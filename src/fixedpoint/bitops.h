// Bit-manipulation helpers shared by the fixed-point types, the subword
// arithmetic fast paths, and the gate-level multiplier models.

#pragma once

#include <cassert>
#include <cstdint>

namespace dvafs {

// Mask with the low `width` bits set (width in [0, 64]).
constexpr std::uint64_t low_mask(int width) noexcept
{
    return width >= 64 ? ~0ULL : ((1ULL << width) - 1ULL);
}

// Sign-extends the low `width` bits of `v` into a signed 64-bit value.
constexpr std::int64_t sign_extend(std::uint64_t v, int width) noexcept
{
    if (width <= 0 || width >= 64) {
        return static_cast<std::int64_t>(v);
    }
    const std::uint64_t m = 1ULL << (width - 1);
    const std::uint64_t x = v & low_mask(width);
    return static_cast<std::int64_t>((x ^ m) - m);
}

// Two's-complement encode a signed value into `width` bits (truncating).
constexpr std::uint64_t to_bits(std::int64_t v, int width) noexcept
{
    return static_cast<std::uint64_t>(v) & low_mask(width);
}

// Smallest / largest signed values representable in `width` bits.
constexpr std::int64_t signed_min(int width) noexcept
{
    return width >= 64 ? INT64_MIN : -(1LL << (width - 1));
}
constexpr std::int64_t signed_max(int width) noexcept
{
    return width >= 64 ? INT64_MAX : (1LL << (width - 1)) - 1;
}

// Saturating clamp of `v` to the signed `width`-bit range.
constexpr std::int64_t clamp_signed(std::int64_t v, int width) noexcept
{
    const std::int64_t lo = signed_min(width);
    const std::int64_t hi = signed_max(width);
    return v < lo ? lo : (v > hi ? hi : v);
}

// True if `v` fits in signed `width` bits without truncation.
constexpr bool fits_signed(std::int64_t v, int width) noexcept
{
    return v >= signed_min(width) && v <= signed_max(width);
}

// Extracts bit `i` of `v` as 0/1.
constexpr int bit_of(std::uint64_t v, int i) noexcept
{
    return static_cast<int>((v >> i) & 1ULL);
}

// Hamming distance (number of toggling bits) between two words; this is the
// elementary switching-activity measure for bus transitions.
constexpr int hamming(std::uint64_t a, std::uint64_t b) noexcept
{
    return __builtin_popcountll(a ^ b);
}

// In-place transpose of a 64x64 bit matrix stored row-major (bit c of
// x[r] is element (r, c); after the call bit r of x[c] is that element).
// Recursive block swaps, 6 rounds of 32 masked exchanges -- the fast path
// for turning per-vector operand words into per-input lane words when
// packing stimuli for the bit-parallel gate simulators. This is the
// reference network; the hot packing loop (mult/dvafs_mult.cpp) calls the
// dispatched host-SIMD version instead (src/vec/, which vectorizes the
// wide exchange rounds and is bit-identical to this one).
inline void transpose64(std::uint64_t x[64]) noexcept
{
    std::uint64_t m = 0x00000000FFFFFFFFULL;
    for (int j = 32; j != 0; j >>= 1, m ^= m << j) {
        for (int k = 0; k < 64; k = (k + j + 1) & ~j) {
            const std::uint64_t t = ((x[k] >> j) ^ x[k + j]) & m;
            x[k] ^= t << j;
            x[k + j] ^= t;
        }
    }
}

// Arithmetic right shift with round-half-away-from-zero -- the repo-wide
// rounding discipline for dropping fixed-point fraction bits (matches
// round_scaled(rounding::nearest) in fixed.h and the DVAFS subword
// datapath's post-multiply scaling stage). shift in [0, 62]; |v| must stay
// below 2^62 so adding the rounding bias cannot overflow (asserted).
constexpr std::int64_t rounding_rshift(std::int64_t v, int shift) noexcept
{
    assert(shift >= 0 && shift <= 62);
    if (shift == 0) {
        return v;
    }
    assert(v > -(1LL << 62) && v < (1LL << 62));
    const std::int64_t bias = 1LL << (shift - 1);
    return v >= 0 ? (v + bias) >> shift : -((-v + bias) >> shift);
}

// Saturating signed add in `width` bits: both operands must already fit the
// width (asserted), the exact 64-bit sum is clamped to the signed range.
// This is the accumulate step of the subword MAC -- saturation instead of
// the wrap UB a native narrow add would invoke.
constexpr std::int64_t saturating_add(std::int64_t a, std::int64_t b,
                                      int width) noexcept
{
    assert(width >= 1 && width <= 63);
    assert(fits_signed(a, width) && fits_signed(b, width));
    return clamp_signed(a + b, width);
}

// Fixed-point requantization core: scales an integer accumulator onto an
// output grid as acc * multiplier * 2^-shift (round half away from zero,
// the same discipline as rounding_rshift), then saturates to signed
// `out_width` bits. multiplier is a Q31-style integer scale (see
// quantize.h make_requant_scale); shift may be negative (a left shift) for
// scales >= 2. The product and shift run in 128 bits, so the arithmetic is
// exact and the final clamp can never wrap -- signed-overflow-free by
// construction under UBSan for every input.
constexpr std::int64_t requantize(std::int64_t acc, std::int32_t multiplier,
                                  int shift, int out_width) noexcept
{
    assert(shift >= -32 && shift <= 94);
    assert(out_width >= 1 && out_width <= 63);
    // Hot path: an int32 accumulator (the int8 engine) times the Q31
    // multiplier stays under 2^62, so the whole computation fits the
    // native 64-bit rounding shift -- same exact result, no 128-bit ops.
    if (multiplier >= 0 && shift >= 0 && shift <= 62
        && acc >= signed_min(32) && acc <= signed_max(32)) {
        const std::int64_t p = acc * static_cast<std::int64_t>(multiplier);
        return clamp_signed(rounding_rshift(p, shift), out_width);
    }
    using i128 = __int128;
    const i128 p = static_cast<i128>(acc) * multiplier;
    i128 q;
    if (shift > 0) {
        const i128 bias = static_cast<i128>(1) << (shift - 1);
        q = p >= 0 ? (p + bias) >> shift : -((-p + bias) >> shift);
    } else if (shift < 0) {
        q = p * (static_cast<i128>(1) << -shift);
    } else {
        q = p;
    }
    const i128 lo = signed_min(out_width);
    const i128 hi = signed_max(out_width);
    return static_cast<std::int64_t>(q < lo ? lo : (q > hi ? hi : q));
}

// Truncates (LSB-gates) a signed `width`-bit value so that only the top
// `keep_bits` carry information; the dropped LSBs read as zero. This is the
// DAS input-truncation operation from the paper (Fig. 1a: LSBs gated).
constexpr std::int64_t truncate_lsbs(std::int64_t v, int width,
                                     int keep_bits) noexcept
{
    if (keep_bits >= width) {
        return v;
    }
    const int drop = width - keep_bits;
    const std::uint64_t bits = to_bits(v, width) & (low_mask(width)
                                                    & ~low_mask(drop));
    return sign_extend(bits, width);
}

} // namespace dvafs
