// Tensor / vector quantizers for the CNN path.
//
// The paper (Sec. IV, Fig. 6) quantizes weights and input feature maps of each
// layer to b bits with a per-layer scale. We implement symmetric uniform
// quantization: scale is chosen so that the largest-magnitude element maps to
// the largest representable code.

#pragma once

#include "fixedpoint/fixed.h"

#include <cstdint>
#include <span>
#include <vector>

namespace dvafs {

// Symmetric uniform quantizer: code = round(value / step), with
// step = max_abs / (2^(bits-1) - 1). Codes saturate to the signed range.
struct quant_params {
    int bits = 8;
    double step = 1.0; // real value of one code unit

    double dequantize(std::int32_t code) const noexcept
    {
        return static_cast<double>(code) * step;
    }
};

// Chooses quantization parameters for `data` at `bits` precision.
// If max_abs_override > 0 it is used instead of the observed max (lets the
// caller share one scale across tensors, e.g. activations over a batch).
quant_params choose_quant(std::span<const float> data, int bits,
                          double max_abs_override = 0.0);

// Quantizes to integer codes (saturating, round-half-away-from-zero).
std::vector<std::int32_t> quantize(std::span<const float> data,
                                   const quant_params& qp);

// Dequantizes codes back to real values.
std::vector<float> dequantize(std::span<const std::int32_t> codes,
                              const quant_params& qp);

// One-shot "fake quantization": value -> quantize -> dequantize. This is what
// the Fig. 6 sweeps apply to weights/activations to emulate b-bit hardware.
void fake_quantize_inplace(std::span<float> data, int bits,
                           double max_abs_override = 0.0);

// Quantization RMSE of representing `data` at `bits` precision.
double quantization_rmse(std::span<const float> data, int bits);

// Fraction of elements that quantize to code 0 at the given precision --
// the sparsity measure used by Table III (Envision gates zero operands).
double quantized_sparsity(std::span<const float> data, int bits);

} // namespace dvafs
