// Tensor / vector quantizers for the CNN path.
//
// The paper (Sec. IV, Fig. 6) quantizes weights and input feature maps of each
// layer to b bits with a per-layer scale. We implement symmetric uniform
// quantization: scale is chosen so that the largest-magnitude element maps to
// the largest representable code.

#pragma once

#include "fixedpoint/fixed.h"

#include <cassert>
#include <cstdint>
#include <span>
#include <type_traits>
#include <vector>

namespace dvafs {

// Symmetric uniform quantizer: code = round(value / step), with
// step = max_abs / (2^(bits-1) - 1). Codes saturate to the signed range.
struct quant_params {
    int bits = 8;
    double step = 1.0; // real value of one code unit

    double dequantize(std::int32_t code) const noexcept
    {
        return static_cast<double>(code) * step;
    }
};

// Integer requantization scale: a positive real scale decomposed as
// multiplier * 2^-shift with multiplier a Q31-style integer in
// [2^30, 2^31) (gemmlowp's normalization; relative error <= 2^-31).
// multiplier == 0 encodes scale 0 and maps every accumulator to code 0.
// This is the form fixedpoint/bitops.h requantize() consumes: between an
// integer accumulator and the output codes the only arithmetic is one
// integer multiply plus one saturating rounding right shift -- exactly the
// requantization stage of the DVAFS subword datapath.
struct requant_scale {
    std::int32_t multiplier = 0;
    int shift = 0;
};

// Decomposes `scale`; scale <= 0 (or denormal-small) yields {0, 0}.
requant_scale make_requant_scale(double scale);

// Applies the scale to one accumulator, saturating into `out_width` bits.
inline std::int64_t requantize(std::int64_t acc, const requant_scale& s,
                               int out_width) noexcept
{
    return requantize(acc, s.multiplier, s.shift, out_width);
}

// Chooses quantization parameters for `data` at `bits` precision.
// If max_abs_override > 0 it is used instead of the observed max (lets the
// caller share one scale across tensors, e.g. activations over a batch).
quant_params choose_quant(std::span<const float> data, int bits,
                          double max_abs_override = 0.0);

// Quantizes to integer codes (saturating, round-half-away-from-zero).
std::vector<std::int32_t> quantize(std::span<const float> data,
                                   const quant_params& qp);

// Quantizes straight into a narrow code type (int8_t / int16_t) for the
// integer inference path -- same grid, rounding and saturation as
// quantize(), but the codes are stored at the width the integer GEMM
// consumes. qp.bits must fit T (asserted).
template <typename T>
std::vector<T> quantize_codes(std::span<const float> data,
                              const quant_params& qp)
{
    static_assert(std::is_signed_v<T> && sizeof(T) <= 4);
    assert(qp.bits >= 1 && qp.bits <= static_cast<int>(8 * sizeof(T)));
    std::vector<T> out;
    out.reserve(data.size());
    for (const float v : data) {
        const std::int64_t code =
            round_scaled(static_cast<double>(v) / qp.step,
                         rounding::nearest);
        out.push_back(static_cast<T>(clamp_signed(code, qp.bits)));
    }
    return out;
}

// Dequantizes codes back to real values.
std::vector<float> dequantize(std::span<const std::int32_t> codes,
                              const quant_params& qp);

// One-shot "fake quantization": value -> quantize -> dequantize. This is what
// the Fig. 6 sweeps apply to weights/activations to emulate b-bit hardware.
void fake_quantize_inplace(std::span<float> data, int bits,
                           double max_abs_override = 0.0);

// Quantization RMSE of representing `data` at `bits` precision.
double quantization_rmse(std::span<const float> data, int bits);

// Fraction of elements that quantize to code 0 at the given precision --
// the sparsity measure used by Table III (Envision gates zero operands).
double quantized_sparsity(std::span<const float> data, int bits);

} // namespace dvafs
