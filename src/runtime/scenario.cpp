#include "runtime/scenario.h"

#include "util/rng.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace dvafs {

std::size_t scenario::total_frames() const noexcept
{
    std::size_t n = 0;
    for (const scenario_phase& ph : phases) {
        n += ph.frames > 0 ? static_cast<std::size_t>(ph.frames) : 0;
    }
    return n;
}

void scenario::validate() const
{
    if (phases.empty()) {
        throw std::invalid_argument("scenario: no phases");
    }
    for (const scenario_phase& ph : phases) {
        if (ph.network >= networks.size()) {
            throw std::invalid_argument("scenario: phase '" + ph.name
                                        + "' names network "
                                        + std::to_string(ph.network)
                                        + " of "
                                        + std::to_string(networks.size()));
        }
        if (ph.frames <= 0) {
            throw std::invalid_argument("scenario: phase '" + ph.name
                                        + "' has no frames");
        }
        if (ph.target_fps <= 0.0) {
            throw std::invalid_argument("scenario: phase '" + ph.name
                                        + "' has no frame rate");
        }
    }
}

tensor make_stream_frame(const network& net, const scenario_phase& ph,
                         std::uint64_t stream_seed,
                         std::uint64_t frame_index)
{
    // Per-frame seeding (splitmix-style mix of seed and index) keeps every
    // frame's stream independent of how frames are batched across
    // scheduler calls and threads.
    std::uint64_t z = stream_seed + 0x9e3779b97f4a7c15ULL * (frame_index + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    pcg32 rng(z ^ (z >> 31));

    tensor x(net.input_shape());
    for (float& v : x.flat()) {
        // The teacher-dataset distribution (image-like: non-negative,
        // moderately sparse) plus the phase's additive sensor noise.
        const double g = rng.gaussian(ph.input_mean, ph.input_spread);
        double pixel = std::max(0.0, std::min(1.0, g));
        if (ph.input_noise > 0.0) {
            pixel += ph.input_noise * rng.gaussian();
        }
        v = static_cast<float>(pixel);
    }
    return x;
}

scenario make_cascade_scenario(network detector, network recognizer,
                               int detector_frames, int recognizer_frames)
{
    scenario sc;
    sc.name = "cascade";
    sc.networks.push_back(std::move(detector));
    sc.networks.push_back(std::move(recognizer));

    scenario_phase detect;
    detect.name = "detect";
    detect.network = 0;
    detect.frames = detector_frames;
    detect.target_fps = 30.0;
    detect.accuracy_budget = 0.10; // always-on: trade accuracy for energy
    detect.input_noise = 0.15;     // degraded sensor stream
    sc.phases.push_back(detect);

    scenario_phase recognize;
    recognize.name = "recognize";
    recognize.network = 1;
    recognize.frames = recognizer_frames;
    recognize.target_fps = 10.0;
    recognize.accuracy_budget = 0.0; // full precision requirement
    sc.phases.push_back(recognize);
    return sc;
}

} // namespace dvafs
