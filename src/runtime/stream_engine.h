// The streaming scenario engine: executes a multi-network scenario
// frame-by-frame under per-phase latency and energy budgets, re-planning
// operating points online.
//
// Timeline model (deterministic -- wall clock never feeds back into
// decisions, so a run is bit-identical across thread counts, and two
// freshly constructed engines given the same scenario produce identical
// results; note that governor adaptation -- drift-tightened budgets,
// escalated requirements -- deliberately persists across run() calls on
// one engine, so a *repeat* run on the same engine starts from what the
// governor learned):
//
//  * Frames of phase p arrive at target_fps; each frame's modeled service
//    time is its plan's total_time_ms.
//  * A phase boundary (or a drift detection) *issues* a re-plan; the new
//    plan activates `replan_latency_frames` frames later. Interim frames
//    keep streaming on the previous plan -- or, when the phase switched
//    networks, on the incoming network's heuristic boot plan -- so the
//    stream never stalls. The governor's measured planning_ms is reported
//    (bench_runtime_stream gates it against the frame period) but never
//    consulted.
//  * Every probe_interval frames the engine scores the last probe_window
//    frames' predictions against their float-teacher argmaxes; when that
//    window accuracy drops more than drift_margin below the phase's
//    planned accuracy floor, the governor escalates.
//
// Energy is ledger-attributed per power domain (AS / NAS / MEM) for every
// frame from the active plan's envision power decomposition.

#pragma once

#include "energy/energy_ledger.h"
#include "envision/envision.h"
#include "runtime/adaptive_governor.h"
#include "runtime/scenario.h"
#include "runtime/stream_scheduler.h"

#include <cstdint>
#include <string>
#include <vector>

namespace dvafs {

struct stream_config {
    unsigned threads = 0;          // forward-pass workers (0 = hardware)
    int max_in_flight = 4;         // frames batched per scheduler call
    int probe_interval = 16;       // frames between drift probes
    int probe_window = 8;          // frames scored per probe
    double drift_margin = 0.05;    // tolerated drop below the accuracy floor
    int replan_latency_frames = 2; // frames served on the old plan while a
                                   // re-plan is in flight
    int max_escalations_per_phase = 3;
    // Statically verify every re-plan/escalation against the governor's
    // cached layer frontiers (analysis/plan_verifier.h) before it is
    // accepted; a bad plan throws verification_error instead of silently
    // streaming frames on inconsistent bookkeeping. Costs O(layers x
    // frontier points) per governor decision, so it stays on by default.
    bool verify_replans = true;
};

// Per-phase roll-up of the frame log.
struct phase_stats {
    std::string name;
    std::size_t frames = 0;
    int replans = 0;               // events issued during this phase
    double mean_frame_ms = 0.0;    // modeled service time
    double sustained_fps = 0.0;    // min(target, 1000 / mean_frame_ms)
    double energy_per_frame_mj = 0.0;
    double stream_accuracy = 0.0;  // fraction of frames matching teacher
    double deadline_hit_rate = 0.0;
    bool deadline_met = true;      // the active plan met the frame period
};

struct stream_result {
    std::vector<frame_result> frames;   // the per-frame log
    std::vector<replan_event> replans;  // every governor decision
    std::vector<phase_stats> phases;
    energy_ledger ledger;               // per-domain attribution, all frames
    double total_energy_mj = 0.0;
    double mean_frame_ms = 0.0;
    double sustained_fps = 0.0;         // frame-weighted across phases
    double stream_accuracy = 0.0;
    double prepare_ms = 0.0;            // measured admission cost (startup)
    double planning_ms = 0.0;           // measured re-plan cost, summed
};

class stream_engine {
public:
    stream_engine(const envision_model& model, governor_config gcfg = {},
                  stream_config scfg = {})
        : governor_(model, gcfg), scheduler_(scfg.threads), cfg_(scfg)
    {
    }

    // Prepares every scenario network (admission), then streams all
    // phases. The scenario must outlive the call; networks are only read.
    // An engine may run several scenarios: governor state is cached by
    // network name, and a rebuilt network re-binds under its name when
    // its structural fingerprint matches (same seeds, same network).
    stream_result run(const scenario& sc);

    adaptive_governor& governor() noexcept { return governor_; }
    const stream_config& config() const noexcept { return cfg_; }

private:
    adaptive_governor governor_;
    stream_scheduler scheduler_;
    stream_config cfg_;
};

} // namespace dvafs
