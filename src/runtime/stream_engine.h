// The streaming scenario engine: executes a multi-network scenario
// frame-by-frame under per-phase latency and energy budgets, re-planning
// operating points online.
//
// Timeline model (deterministic -- wall clock never feeds back into
// decisions, so a run is bit-identical across thread counts, and two
// freshly constructed engines given the same scenario produce identical
// results; note that governor adaptation -- drift-tightened budgets,
// escalated requirements -- deliberately persists across run() calls on
// one engine, so a *repeat* run on the same engine starts from what the
// governor learned):
//
//  * Frames of phase p arrive at target_fps; each frame's modeled service
//    time is its plan's total_time_ms. An optional fault_injector
//    perturbs the stream deterministically: drift bursts add input
//    noise, rate bursts scale the effective arrival period (a deadline
//    storm), service overruns scale the modeled service time. Admission
//    batches are cut at fault-window boundaries, so injection cannot
//    change any batching-dependent outcome.
//  * A phase boundary (or a drift detection) *issues* a re-plan; the new
//    plan activates `replan_latency_frames` frames later. Interim frames
//    keep streaming on the previous plan -- or, when the phase switched
//    networks, on the incoming network's heuristic boot plan -- so the
//    stream never stalls. The governor's measured planning_ms is reported
//    (bench_runtime_stream gates it against the frame period) but never
//    consulted.
//  * Every probe_interval frames the engine scores the last probe_window
//    frames' predictions against their float-teacher argmaxes; when that
//    window accuracy drops more than drift_margin below the phase's
//    planned accuracy floor, the governor escalates. A stale escalation
//    (no lever left) stops further escalation for the phase.
//  * The overload valve watches a pressure signal -- the max of latency
//    utilization (modeled service time over the effective period) and
//    energy utilization (frame energy over valve.energy_budget_mj) --
//    with hysteresis: sustained over-pressure sheds *accuracy* (a
//    cheaper/faster frontier re-plan at valve level L, granted
//    L * budget_step extra accuracy allowance and the live effective
//    deadline), never frames; sustained calm restores one level at a
//    time once the stacked pre-shed plan would comfortably fit again.
//    Level 0 re-plans are input-identical to the phase-boundary plan, so
//    full recovery restores the original plan exactly. State machine and
//    parameters: docs/robustness.md.
//
// Energy is ledger-attributed per power domain (AS / NAS / MEM) for every
// frame from the active plan's envision power decomposition.

#pragma once

#include "energy/energy_ledger.h"
#include "envision/envision.h"
#include "runtime/adaptive_governor.h"
#include "runtime/fault_injector.h"
#include "runtime/scenario.h"
#include "runtime/stream_scheduler.h"

#include <cstdint>
#include <string>
#include <vector>

namespace dvafs {

// The overload valve: shed accuracy before frames. Disabled (enabled =
// false) the engine behaves exactly as before -- over-pressure frames
// simply miss their deadlines.
struct valve_config {
    bool enabled = true;
    // Consecutive over-pressure frames (pressure > 1) before shedding one
    // level. Small: a storm should be answered within a frame batch.
    int shed_after = 3;
    // Hysteresis: calm means pressure <= recover_below; this margin keeps
    // shed/recover from oscillating at the boundary.
    double recover_below = 0.85;
    // Consecutive calm frames before restoring one level.
    int recover_after = 12;
    // Extra accuracy-loss allowance granted per shed level (the DP budget
    // becomes phase budget + level * budget_step, clamped to 1).
    double budget_step = 0.02;
    // Maximum shed depth.
    int max_level = 4;
    // Optional global energy pressure: a per-frame energy budget in mJ
    // (0 = latency pressure only). Frame energy above it reads as
    // over-pressure exactly like a deadline overrun.
    double energy_budget_mj = 0.0;
};

struct stream_config {
    unsigned threads = 0;          // forward-pass workers (0 = hardware)
    int max_in_flight = 4;         // frames batched per scheduler call
    int probe_interval = 16;       // frames between drift probes
    int probe_window = 8;          // frames scored per probe
    double drift_margin = 0.05;    // tolerated drop below the accuracy floor
    int replan_latency_frames = 2; // frames served on the old plan while a
                                   // re-plan is in flight
    int max_escalations_per_phase = 3;
    // Statically verify every re-plan/escalation against the governor's
    // cached layer frontiers (analysis/plan_verifier.h) before it is
    // accepted; a bad plan throws verification_error instead of silently
    // streaming frames on inconsistent bookkeeping. Costs O(layers x
    // frontier points) per governor decision, so it stays on by default.
    bool verify_replans = true;
    valve_config valve;
};

// Robustness counters for one run (tests and benches assert on these
// instead of scraping the logs). frames_dropped is the no-drop contract
// made visible: the engine serves every scenario frame by construction,
// so it must read 0 -- anything else is a harness bug.
struct stream_stats {
    std::uint64_t frames_served = 0;
    std::uint64_t frames_dropped = 0;  // always 0: shed accuracy, not frames
    int replans = 0;                   // startup + phase-boundary re-plans
    int escalations = 0;               // drift escalations issued
    int stale_escalations = 0;         // escalations with no lever left
    int shed_events = 0;               // valve: levels shed
    int recover_events = 0;            // valve: levels restored
    int verify_failures = 0;           // plans rejected by the re-plan gate
    int deadline_misses = 0;           // frames with deadline_met == false
    int max_valve_level = 0;           // deepest shed this run
    std::uint64_t faulted_frames = 0;  // frames with any active fault
    // Frames from the last over-pressure frame to the recover event that
    // returned the valve to level 0 (the most recent full recovery; 0 if
    // the valve never fully recovered or never shed).
    std::uint64_t recovery_frames = 0;
};

// Per-phase roll-up of the frame log.
struct phase_stats {
    std::string name;
    std::size_t frames = 0;
    int replans = 0;               // events issued during this phase
    double mean_frame_ms = 0.0;    // modeled service time
    double sustained_fps = 0.0;    // min(target, 1000 / mean_frame_ms)
    double energy_per_frame_mj = 0.0;
    double stream_accuracy = 0.0;  // fraction of frames matching teacher
    double deadline_hit_rate = 0.0;
    bool deadline_met = true;      // the active plan met the frame period
};

struct stream_result {
    std::vector<frame_result> frames;   // the per-frame log
    std::vector<replan_event> replans;  // every governor decision
    std::vector<phase_stats> phases;
    stream_stats stats;
    energy_ledger ledger;               // per-domain attribution, all frames
    double total_energy_mj = 0.0;
    double mean_frame_ms = 0.0;
    double sustained_fps = 0.0;         // frame-weighted across phases
    double stream_accuracy = 0.0;
    double prepare_ms = 0.0;            // measured admission cost (startup)
    double planning_ms = 0.0;           // measured re-plan cost, summed
};

class stream_engine {
public:
    stream_engine(const envision_model& model, governor_config gcfg = {},
                  stream_config scfg = {})
        : governor_(model, gcfg), scheduler_(scfg.threads), cfg_(scfg)
    {
    }

    // Prepares every scenario network (admission), then streams all
    // phases. The scenario must outlive the call; networks are only read.
    // An engine may run several scenarios: governor state is cached by
    // network name, and a rebuilt network re-binds under its name when
    // its structural fingerprint matches (same seeds, same network).
    //
    // `faults` (optional) injects the scripted adversities of
    // runtime/fault_injector.h into the frame loop; it must outlive the
    // call. Cache faults are NOT installed here -- callers that want them
    // install the injector process-wide with scoped_disk_fault_hook
    // before admission.
    stream_result run(const scenario& sc,
                      const fault_injector* faults = nullptr);

    adaptive_governor& governor() noexcept { return governor_; }
    const stream_config& config() const noexcept { return cfg_; }

private:
    adaptive_governor governor_;
    stream_scheduler scheduler_;
    stream_config cfg_;
};

} // namespace dvafs
