#include "runtime/adaptive_governor.h"

#include "runtime/wallclock.h"
#include "util/disk_store.h"
#include "util/serial.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <optional>
#include <sstream>
#include <stdexcept>

namespace dvafs {

namespace {

planner_config search_config(const governor_config& cfg)
{
    planner_config pc;
    pc.policy = plan_policy::frontier_search;
    // The frontiers are priced for *any* phase budget up front (points
    // below a layer's requirement carry their measured loss); each re-plan
    // DP then constrains by the phase's own budget.
    pc.accuracy_budget = 1.0;
    pc.budget_resolution = cfg.budget_resolution;
    pc.time_pareto = true;
    pc.frontier = cfg.frontier;
    return pc;
}

planner_config boot_config(const governor_config& cfg)
{
    planner_config pc;
    pc.policy = plan_policy::heuristic_measured;
    pc.frontier = cfg.frontier;
    return pc;
}

// FNV-1a over each weighted layer's count and a head sample of its
// weights: cheap even for the full-topology zoo networks, and any seed
// or pruning difference perturbs the very first values.
std::uint64_t weight_digest_of(const network& net)
{
    std::uint64_t h = 1469598103934665603ULL;
    const auto mix = [&h](std::uint64_t v) {
        for (int b = 0; b < 8; ++b) {
            h ^= (v >> (8 * b)) & 0xffU;
            h *= 1099511628211ULL;
        }
    };
    for (const std::size_t li : net.weighted_layers()) {
        const std::vector<float>* w = net.at(li).weights();
        if (w == nullptr) {
            continue;
        }
        mix(w->size());
        const std::size_t sample = std::min<std::size_t>(w->size(), 64);
        for (std::size_t i = 0; i < sample; ++i) {
            std::uint32_t bits;
            static_assert(sizeof(bits) == sizeof(float));
            std::memcpy(&bits, &(*w)[i], sizeof(bits));
            mix(bits);
        }
    }
    return h;
}

// -- teacher-sweep persistence ------------------------------------------------
//
// The once-per-network prepare (quantization sweep + joint refinement +
// accuracy-priced layer frontiers) dominates cold-start-to-first-replan,
// and its result depends only on the network fingerprint, the sweep
// config and the measured mode frontier -- all captured in the key below,
// so a fleet of planner processes shares one sweep through DVAFS_CACHE_DIR.
// The escalate() path deliberately never stores: drift-escalated
// requirements are a per-process response, not the network's baseline.

constexpr std::uint32_t teacher_blob_version = 1;
constexpr std::uint8_t max_sw_mode_u8 = static_cast<std::uint8_t>(
    sw_mode::w4x4);

std::string teacher_key(const network& net, std::size_t depth,
                        std::uint64_t macs, std::uint64_t digest,
                        const governor_config& cfg,
                        const std::string& frontier_key)
{
    std::ostringstream os;
    os << std::hexfloat;
    os << "net:" << net.name() << "|d" << depth << "|m" << macs << "|w"
       << digest << "|img" << cfg.sweep.images << "|acc"
       << cfg.sweep.target_accuracy << "|mb" << cfg.sweep.max_bits << "|s"
       << cfg.sweep.seed << "|res" << cfg.budget_resolution
       << "|fr:" << frontier_key;
    return os.str();
}

std::vector<std::uint8_t>
serialize_teacher(const adaptive_governor::network_state& st)
{
    byte_writer w;
    w.u32(teacher_blob_version);
    w.f64(st.reference_accuracy);
    w.u64(st.reqs.size());
    for (const layer_quant_requirement& r : st.reqs) {
        w.str(r.layer_name);
        w.u64(r.layer_index);
        w.i64(r.min_weight_bits);
        w.i64(r.min_input_bits);
    }
    w.u64(st.sparsity.size());
    for (const layer_sparsity& s : st.sparsity) {
        w.str(s.layer_name);
        w.f64(s.weight_sparsity);
        w.f64(s.input_sparsity);
    }
    w.u64(st.frontiers.size());
    for (const layer_frontier& f : st.frontiers) {
        w.str(f.layer_name);
        w.u64(f.layer_index);
        w.i64(f.required_bits);
        w.u64(f.points.size());
        for (const layer_frontier_point& p : f.points) {
            w.u64(p.mode_point);
            w.u8(static_cast<std::uint8_t>(p.spec.mode));
            w.i64(p.spec.keep_bits);
            w.f64(p.spec.vdd);
            w.f64(p.spec.f_mhz);
            w.f64(p.activity_divisor);
            w.u8(static_cast<std::uint8_t>(p.mode.mode));
            w.i64(p.mode.weight_bits);
            w.i64(p.mode.input_bits);
            w.f64(p.mode.f_mhz);
            w.f64(p.mode.vdd);
            w.f64(p.mode.weight_sparsity);
            w.f64(p.mode.input_sparsity);
            w.f64(p.energy_mj);
            w.f64(p.time_ms);
            w.f64(p.accuracy_loss);
        }
    }
    return w.take();
}

bool deserialize_teacher(const std::vector<std::uint8_t>& blob,
                         std::size_t expected_layers,
                         adaptive_governor::network_state& st)
{
    try {
        byte_reader r(blob);
        if (r.u32() != teacher_blob_version) {
            return false;
        }
        st.reference_accuracy = r.f64();
        const auto read_mode = [&r]() {
            const std::uint8_t m = r.u8();
            if (m > max_sw_mode_u8) {
                throw serial_error("bad sw_mode");
            }
            return static_cast<sw_mode>(m);
        };
        const std::uint64_t nr = r.u64();
        if (nr != expected_layers) {
            return false;
        }
        st.reqs.resize(static_cast<std::size_t>(nr));
        for (layer_quant_requirement& q : st.reqs) {
            q.layer_name = r.str();
            q.layer_index = static_cast<std::size_t>(r.u64());
            q.min_weight_bits = static_cast<int>(r.i64());
            q.min_input_bits = static_cast<int>(r.i64());
        }
        const std::uint64_t ns = r.u64();
        if (ns != expected_layers) {
            return false;
        }
        st.sparsity.resize(static_cast<std::size_t>(ns));
        for (layer_sparsity& s : st.sparsity) {
            s.layer_name = r.str();
            s.weight_sparsity = r.f64();
            s.input_sparsity = r.f64();
        }
        const std::uint64_t nf = r.u64();
        if (nf != expected_layers) {
            return false;
        }
        st.frontiers.resize(static_cast<std::size_t>(nf));
        for (layer_frontier& f : st.frontiers) {
            f.layer_name = r.str();
            f.layer_index = static_cast<std::size_t>(r.u64());
            f.required_bits = static_cast<int>(r.i64());
            const std::uint64_t np = r.u64();
            if (np > r.remaining() / 114 || np == 0) {
                return false;
            }
            f.points.resize(static_cast<std::size_t>(np));
            for (layer_frontier_point& p : f.points) {
                p.mode_point = static_cast<std::size_t>(r.u64());
                p.spec.mode = read_mode();
                p.spec.keep_bits = static_cast<int>(r.i64());
                p.spec.vdd = r.f64();
                p.spec.f_mhz = r.f64();
                p.activity_divisor = r.f64();
                p.mode.mode = read_mode();
                p.mode.weight_bits = static_cast<int>(r.i64());
                p.mode.input_bits = static_cast<int>(r.i64());
                p.mode.f_mhz = r.f64();
                p.mode.vdd = r.f64();
                p.mode.weight_sparsity = r.f64();
                p.mode.input_sparsity = r.f64();
                p.energy_mj = r.f64();
                p.time_ms = r.f64();
                p.accuracy_loss = r.f64();
            }
        }
        return r.done();
    } catch (const serial_error&) {
        return false;
    }
}

} // namespace

const char* to_string(replan_reason r) noexcept
{
    switch (r) {
    case replan_reason::startup: return "startup";
    case replan_reason::phase_change: return "phase-change";
    case replan_reason::drift: return "drift";
    case replan_reason::refresh: return "refresh";
    case replan_reason::shed: return "shed";
    case replan_reason::recover: return "recover";
    }
    return "?";
}

adaptive_governor::adaptive_governor(const envision_model& model,
                                     governor_config cfg)
    : model_(model), cfg_(cfg), planner_(model_, search_config(cfg_)),
      boot_planner_(model_, boot_config(cfg_))
{
}

bool adaptive_governor::prepared(const network& net) const
{
    return states_.find(net.name()) != states_.end();
}

adaptive_governor::network_state&
adaptive_governor::prepare_mutable(const network& net)
{
    const auto it = states_.find(net.name());
    if (it != states_.end()) {
        // State is keyed by name so a governor survives its networks
        // being rebuilt between runs (same seeds => same network). Guard
        // against a *different* network reusing the name with the
        // fingerprint captured at prepare time -- on every hit, not just
        // on a new address: the cached pointer may dangle and a freed
        // block can be reused, so address identity proves nothing.
        if (it->second.depth != net.depth()
            || it->second.total_macs != net.total_macs()
            || it->second.weight_digest != weight_digest_of(net)) {
            throw std::invalid_argument(
                "adaptive_governor: two different networks named "
                + net.name());
        }
        it->second.net = &net;
        return it->second;
    }

    network_state st;
    st.net = &net;
    st.depth = net.depth();
    st.total_macs = net.total_macs();
    st.weight_digest = weight_digest_of(net);
    // The dataset is always rebuilt (deterministic from net + seed, cheap
    // relative to the sweep) -- escalation and drift probing need it live.
    st.data = make_teacher_dataset(net, cfg_.sweep);

    const disk_store store = disk_store::from_env();
    const std::string key = teacher_key(
        net, st.depth, st.total_macs, st.weight_digest, cfg_,
        cfg_.frontier.key(tech_28nm_fdsoi(), model_.calibration()));
    const std::size_t layers = net.weighted_layers().size();
    bool warm = false;
    if (store.enabled()) {
        if (const auto blob = store.load("teacher", key)) {
            warm = deserialize_teacher(*blob, layers, st);
        }
    }
    if (!warm) {
        const batch_evaluator eval(net, st.data, cfg_.sweep.threads);
        st.reqs = eval.refine(eval.sweep(cfg_.sweep), cfg_.sweep);
        st.sparsity = eval.sparsity();
        st.reference_accuracy = requirements_accuracy(net, st.reqs, st.data,
                                                      cfg_.sweep.threads);
        rebuild_frontiers(st);
        if (store.enabled()) {
            store.store("teacher", key, serialize_teacher(st));
        }
    }
    // The boot fallback is a cheap heuristic plan (the frontier cache is
    // warm by now either way); recomputing it keeps the blob independent
    // of planner internals.
    st.fallback = boot_planner_.plan_with_requirements(net, st.reqs,
                                                       st.sparsity);
    return states_.emplace(net.name(), std::move(st)).first->second;
}

const adaptive_governor::network_state&
adaptive_governor::prepare(const network& net)
{
    return prepare_mutable(net);
}

void adaptive_governor::rebuild_frontiers(network_state& st)
{
    st.frontiers = planner_.layer_frontiers(*st.net, st.reqs, st.sparsity,
                                            &st.data);
}

double adaptive_governor::effective_budget(const network& net,
                                           const scenario_phase& ph) const
{
    const auto it = budget_override_.find(net.name() + "/" + ph.name);
    return it != budget_override_.end()
               ? std::min(it->second, ph.accuracy_budget)
               : ph.accuracy_budget;
}

replan_event adaptive_governor::replan_with(const network& net,
                                            replan_reason reason,
                                            std::uint64_t frame,
                                            double accuracy_budget,
                                            double latency_budget_ms)
{
    const auto t0 = std::chrono::steady_clock::now();
    const network_state& st = prepare(net);
    replan_event ev;
    ev.reason = reason;
    ev.plan_version = ++version_;
    ev.frame = frame;
    ev.accuracy_budget = accuracy_budget;
    ev.latency_budget_ms = latency_budget_ms;
    ev.plan = planner_.plan_from_frontiers(net, st.reqs, st.sparsity,
                                           st.frontiers, accuracy_budget,
                                           latency_budget_ms);
    ev.planning_ms = elapsed_ms_since(t0);
    return ev;
}

replan_event adaptive_governor::replan(const network& net,
                                       const scenario_phase& ph,
                                       replan_reason reason,
                                       std::uint64_t frame)
{
    return replan_with(net, reason, frame, effective_budget(net, ph),
                       1000.0 / ph.target_fps);
}

replan_event adaptive_governor::replan_valve(const network& net,
                                             const scenario_phase& ph,
                                             replan_reason reason,
                                             std::uint64_t frame,
                                             int level, double budget_step,
                                             double latency_budget_ms)
{
    if (level < 0 || budget_step < 0.0 || latency_budget_ms <= 0.0) {
        throw std::invalid_argument(
            "adaptive_governor::replan_valve: bad level/step/latency");
    }
    // The shed allowance rides on top of whatever the drift path already
    // tightened the phase budget to -- the two controls compose: drift
    // says "spend less accuracy overall", the valve says "spend this much
    // more *right now* to stay feasible under the live deadline".
    const double budget = std::min(
        1.0, effective_budget(net, ph) + level * budget_step);
    replan_event ev =
        replan_with(net, reason, frame, budget, latency_budget_ms);
    ev.valve_level = level;
    return ev;
}

replan_event adaptive_governor::escalate(const network& net,
                                         const scenario_phase& ph,
                                         std::uint64_t frame)
{
    const auto t0 = std::chrono::steady_clock::now();
    network_state& st = prepare_mutable(net);
    const std::string key = net.name() + "/" + ph.name;
    const double cur = effective_budget(net, ph);
    bool rebuilt = false;
    bool stale = false;
    if (cur >= cfg_.budget_resolution) {
        // Stage one: spend less accuracy. Below one DP resolution step a
        // budget is indistinguishable from zero, so floor it.
        const double next = cur / 2.0;
        budget_override_[key] =
            next >= cfg_.budget_resolution ? next : 0.0;
    } else {
        // Stage two: the requirements themselves underestimate the live
        // stream -- raise every layer by one bit and re-price the cached
        // frontiers. Bounded: bits cap at the frontier width, and once
        // every requirement is saturated there is nothing left to buy, so
        // skip the (expensive) rebuild instead of re-measuring a no-op
        // and flag the plan stale: repeated escalation under permanent
        // drift converges here -- zero budget, saturated requirements --
        // and must neither loop the rebuild nor underflow the budget.
        const int width = cfg_.frontier.width;
        bool changed = false;
        for (layer_quant_requirement& r : st.reqs) {
            changed |= r.min_weight_bits < width || r.min_input_bits < width;
            r.min_weight_bits = std::min(width, r.min_weight_bits + 1);
            r.min_input_bits = std::min(width, r.min_input_bits + 1);
        }
        if (changed) {
            rebuild_frontiers(st);
            st.reference_accuracy = requirements_accuracy(
                net, st.reqs, st.data, cfg_.sweep.threads);
            st.fallback = boot_planner_.plan_with_requirements(
                net, st.reqs, st.sparsity);
            rebuilt = true;
        } else {
            stale = true;
        }
    }
    replan_event ev = replan(net, ph, replan_reason::drift, frame);
    ev.rebuilt_frontiers = rebuilt;
    ev.plan_stale = stale;
    ev.planning_ms = elapsed_ms_since(t0);
    return ev;
}

replan_event adaptive_governor::refresh_frontier(const network& net,
                                                 const scenario_phase& ph,
                                                 std::uint64_t frame)
{
    const auto t0 = std::chrono::steady_clock::now();
    network_state& st = prepare_mutable(net);
    frontier_cache::global().refresh(planner_.config().frontier,
                                     tech_28nm_fdsoi(),
                                     model_.calibration());
    rebuild_frontiers(st);
    replan_event ev = replan(net, ph, replan_reason::refresh, frame);
    ev.rebuilt_frontiers = true;
    ev.planning_ms = elapsed_ms_since(t0);
    return ev;
}

} // namespace dvafs
