#include "runtime/adaptive_governor.h"

#include "runtime/wallclock.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <stdexcept>

namespace dvafs {

namespace {

planner_config search_config(const governor_config& cfg)
{
    planner_config pc;
    pc.policy = plan_policy::frontier_search;
    // The frontiers are priced for *any* phase budget up front (points
    // below a layer's requirement carry their measured loss); each re-plan
    // DP then constrains by the phase's own budget.
    pc.accuracy_budget = 1.0;
    pc.budget_resolution = cfg.budget_resolution;
    pc.time_pareto = true;
    pc.frontier = cfg.frontier;
    return pc;
}

planner_config boot_config(const governor_config& cfg)
{
    planner_config pc;
    pc.policy = plan_policy::heuristic_measured;
    pc.frontier = cfg.frontier;
    return pc;
}

// FNV-1a over each weighted layer's count and a head sample of its
// weights: cheap even for the full-topology zoo networks, and any seed
// or pruning difference perturbs the very first values.
std::uint64_t weight_digest_of(const network& net)
{
    std::uint64_t h = 1469598103934665603ULL;
    const auto mix = [&h](std::uint64_t v) {
        for (int b = 0; b < 8; ++b) {
            h ^= (v >> (8 * b)) & 0xffU;
            h *= 1099511628211ULL;
        }
    };
    for (const std::size_t li : net.weighted_layers()) {
        const std::vector<float>* w = net.at(li).weights();
        if (w == nullptr) {
            continue;
        }
        mix(w->size());
        const std::size_t sample = std::min<std::size_t>(w->size(), 64);
        for (std::size_t i = 0; i < sample; ++i) {
            std::uint32_t bits;
            static_assert(sizeof(bits) == sizeof(float));
            std::memcpy(&bits, &(*w)[i], sizeof(bits));
            mix(bits);
        }
    }
    return h;
}

} // namespace

const char* to_string(replan_reason r) noexcept
{
    switch (r) {
    case replan_reason::startup: return "startup";
    case replan_reason::phase_change: return "phase-change";
    case replan_reason::drift: return "drift";
    case replan_reason::refresh: return "refresh";
    }
    return "?";
}

adaptive_governor::adaptive_governor(const envision_model& model,
                                     governor_config cfg)
    : model_(model), cfg_(cfg), planner_(model_, search_config(cfg_)),
      boot_planner_(model_, boot_config(cfg_))
{
}

bool adaptive_governor::prepared(const network& net) const
{
    return states_.find(net.name()) != states_.end();
}

adaptive_governor::network_state&
adaptive_governor::prepare_mutable(const network& net)
{
    const auto it = states_.find(net.name());
    if (it != states_.end()) {
        // State is keyed by name so a governor survives its networks
        // being rebuilt between runs (same seeds => same network). Guard
        // against a *different* network reusing the name with the
        // fingerprint captured at prepare time -- on every hit, not just
        // on a new address: the cached pointer may dangle and a freed
        // block can be reused, so address identity proves nothing.
        if (it->second.depth != net.depth()
            || it->second.total_macs != net.total_macs()
            || it->second.weight_digest != weight_digest_of(net)) {
            throw std::invalid_argument(
                "adaptive_governor: two different networks named "
                + net.name());
        }
        it->second.net = &net;
        return it->second;
    }

    network_state st;
    st.net = &net;
    st.depth = net.depth();
    st.total_macs = net.total_macs();
    st.weight_digest = weight_digest_of(net);
    st.data = make_teacher_dataset(net, cfg_.sweep);
    const batch_evaluator eval(net, st.data, cfg_.sweep.threads);
    st.reqs = eval.refine(eval.sweep(cfg_.sweep), cfg_.sweep);
    st.sparsity = eval.sparsity();
    st.reference_accuracy = requirements_accuracy(net, st.reqs, st.data,
                                                  cfg_.sweep.threads);
    rebuild_frontiers(st);
    st.fallback = boot_planner_.plan_with_requirements(net, st.reqs,
                                                       st.sparsity);
    return states_.emplace(net.name(), std::move(st)).first->second;
}

const adaptive_governor::network_state&
adaptive_governor::prepare(const network& net)
{
    return prepare_mutable(net);
}

void adaptive_governor::rebuild_frontiers(network_state& st)
{
    st.frontiers = planner_.layer_frontiers(*st.net, st.reqs, st.sparsity,
                                            &st.data);
}

double adaptive_governor::effective_budget(const network& net,
                                           const scenario_phase& ph) const
{
    const auto it = budget_override_.find(net.name() + "/" + ph.name);
    return it != budget_override_.end()
               ? std::min(it->second, ph.accuracy_budget)
               : ph.accuracy_budget;
}

replan_event adaptive_governor::replan(const network& net,
                                       const scenario_phase& ph,
                                       replan_reason reason,
                                       std::uint64_t frame)
{
    const auto t0 = std::chrono::steady_clock::now();
    const network_state& st = prepare(net);
    replan_event ev;
    ev.reason = reason;
    ev.plan_version = ++version_;
    ev.frame = frame;
    ev.accuracy_budget = effective_budget(net, ph);
    ev.plan = planner_.plan_from_frontiers(net, st.reqs, st.sparsity,
                                           st.frontiers,
                                           ev.accuracy_budget,
                                           1000.0 / ph.target_fps);
    ev.planning_ms = elapsed_ms_since(t0);
    return ev;
}

replan_event adaptive_governor::escalate(const network& net,
                                         const scenario_phase& ph,
                                         std::uint64_t frame)
{
    const auto t0 = std::chrono::steady_clock::now();
    network_state& st = prepare_mutable(net);
    const std::string key = net.name() + "/" + ph.name;
    const double cur = effective_budget(net, ph);
    bool rebuilt = false;
    if (cur >= cfg_.budget_resolution) {
        // Stage one: spend less accuracy. Below one DP resolution step a
        // budget is indistinguishable from zero, so floor it.
        const double next = cur / 2.0;
        budget_override_[key] =
            next >= cfg_.budget_resolution ? next : 0.0;
    } else {
        // Stage two: the requirements themselves underestimate the live
        // stream -- raise every layer by one bit and re-price the cached
        // frontiers. Bounded: bits cap at the frontier width, and once
        // every requirement is saturated there is nothing left to buy, so
        // skip the (expensive) rebuild instead of re-measuring a no-op.
        const int width = cfg_.frontier.width;
        bool changed = false;
        for (layer_quant_requirement& r : st.reqs) {
            changed |= r.min_weight_bits < width || r.min_input_bits < width;
            r.min_weight_bits = std::min(width, r.min_weight_bits + 1);
            r.min_input_bits = std::min(width, r.min_input_bits + 1);
        }
        if (changed) {
            rebuild_frontiers(st);
            st.reference_accuracy = requirements_accuracy(
                net, st.reqs, st.data, cfg_.sweep.threads);
            st.fallback = boot_planner_.plan_with_requirements(
                net, st.reqs, st.sparsity);
            rebuilt = true;
        }
    }
    replan_event ev = replan(net, ph, replan_reason::drift, frame);
    ev.rebuilt_frontiers = rebuilt;
    ev.planning_ms = elapsed_ms_since(t0);
    return ev;
}

replan_event adaptive_governor::refresh_frontier(const network& net,
                                                 const scenario_phase& ph,
                                                 std::uint64_t frame)
{
    const auto t0 = std::chrono::steady_clock::now();
    network_state& st = prepare_mutable(net);
    frontier_cache::global().refresh(planner_.config().frontier,
                                     tech_28nm_fdsoi(),
                                     model_.calibration());
    rebuild_frontiers(st);
    replan_event ev = replan(net, ph, replan_reason::refresh, frame);
    ev.rebuilt_frontiers = true;
    ev.planning_ms = elapsed_ms_since(t0);
    return ev;
}

} // namespace dvafs
