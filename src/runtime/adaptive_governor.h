// Online operating-point governance for the streaming runtime.
//
// The governor splits planning into a slow, once-per-network *prepare*
// (teacher-dataset sweep, joint refinement, sparsity, accuracy-priced
// time-aware layer frontiers -- all cached, with the gate-level mode
// frontier shared process-wide through frontier_cache; its sweeps run on
// the compiled mode-specialized gate engine of circuit/compiled_sim.h,
// which also keeps the drift path's frontier_cache::refresh re-measures
// cheap) and a fast *re-plan* (precision_planner::plan_from_frontiers: a
// microsecond DP over the cached frontiers under the phase's accuracy
// and latency budgets).
// That split is what lets the stream engine swap operating points at phase
// boundaries and on drift without stalling the stream: re-planning costs a
// fraction of one frame period.
//
// Drift escalation is two-staged and deterministic: first halve the
// phase's effective accuracy budget (floor at zero), then -- at a zero
// budget -- raise every layer requirement by one bit and rebuild the
// cached frontiers (the rare, expensive path, flagged on the event).
// Escalation is bounded: once the budget is floored and every requirement
// saturates the frontier width there is no lever left, and the event is
// flagged plan_stale instead of looping or underflowing the budget --
// the stream keeps serving the converged plan.
//
// The overload valve (stream_engine's graceful-degradation path) re-plans
// through replan_valve: the same frontier DP, but under the *live*
// effective frame period (shrunk by a rate burst) and an extra accuracy
// allowance per shed level -- trading accuracy for feasibility before any
// frame is dropped. A valve re-plan at level 0 under the nominal period
// is input-identical to the phase-boundary re-plan, which is what makes
// recovery restore the original plan exactly. See docs/robustness.md.

#pragma once

#include "core/planner.h"
#include "runtime/scenario.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace dvafs {

struct governor_config {
    quant_sweep_config sweep;     // per-network requirement sweep
    frontier_config frontier;     // gate-level measured frontier (cached)
    double budget_resolution = 0.0025;
};

enum class replan_reason {
    startup,
    phase_change,
    drift,
    refresh,
    shed,    // overload valve: spend accuracy to fit the live deadline
    recover, // overload valve: pressure cleared, restore one level
};
const char* to_string(replan_reason r) noexcept;

// One governor decision, kept in the stream result's re-plan log.
struct replan_event {
    replan_reason reason = replan_reason::startup;
    int plan_version = 0;
    std::uint64_t frame = 0;       // global frame index at issue time
    double planning_ms = 0.0;      // measured wall clock (reporting only;
                                   // excluded from determinism checks)
    double accuracy_budget = 0.0;  // effective budget the DP ran under
    bool rebuilt_frontiers = false;
    // Drift escalations only: the governor had no lever left (budget
    // floored at zero AND every requirement saturated at the frontier
    // width) -- the plan is as good as the frontiers allow, and the
    // engine stops escalating this phase instead of looping.
    bool plan_stale = false;
    // Overload-valve events (shed/recover): the valve level this plan
    // serves at (0 = nominal). Zero for every other reason.
    int valve_level = 0;
    // The per-frame latency budget the DP ran under: the phase's nominal
    // 1000/target_fps for ordinary re-plans, the live effective period
    // for valve events.
    double latency_budget_ms = 0.0;
    // Drift events only: live-window accuracy of the outgoing plan and of
    // this plan, measured by the engine's suffix-cached window_probe.
    double window_accuracy_before = -1.0;
    double window_accuracy_after = -1.0;
    network_plan plan;
};

class adaptive_governor {
public:
    explicit adaptive_governor(const envision_model& model,
                               governor_config cfg = {});

    // Cached per-network planning state (built once, keyed by name; a
    // rebuilt network may re-bind under its name if its structural
    // fingerprint matches -- same seeds produce the same network, so the
    // cached sweeps and frontiers stay valid).
    struct network_state {
        const network* net = nullptr;
        // Fingerprint captured at prepare time (the pointer may dangle
        // once the original network is destroyed; these stay
        // comparable): structure plus a sampled weight checksum, so two
        // same-architecture networks built from different seeds do not
        // silently share planning state.
        std::size_t depth = 0;
        std::uint64_t total_macs = 0;
        std::uint64_t weight_digest = 0;
        teacher_dataset data;
        std::vector<layer_quant_requirement> reqs;
        std::vector<layer_sparsity> sparsity;
        std::vector<layer_frontier> frontiers;
        double reference_accuracy = 1.0; // joint accuracy at reqs
        // Heuristic boot plan: what interim frames run on while the first
        // frontier plan for a newly entered network is still in flight.
        network_plan fallback;
    };

    // Builds (or returns) the cached state -- the slow admission path; the
    // stream engine runs it for every scenario network before streaming.
    const network_state& prepare(const network& net);
    bool prepared(const network& net) const;

    // Fast re-plan of `net` for `ph` against the cached frontiers. The
    // phase's latency budget is 1000 / target_fps ms; when no frontier
    // selection meets both budgets the plan is the minimum-time fallback
    // with deadline_met = false (never throws on infeasibility).
    replan_event replan(const network& net, const scenario_phase& ph,
                        replan_reason reason, std::uint64_t frame);

    // Drift response for (net, ph); see the header comment.
    replan_event escalate(const network& net, const scenario_phase& ph,
                          std::uint64_t frame);

    // Overload-valve re-plan: DP under the phase budget plus
    // `level * budget_step` extra accuracy allowance and an explicit
    // per-frame latency budget (the live effective period under a rate
    // burst). `reason` is shed or recover; level 0 under the nominal
    // period reproduces the phase-boundary plan exactly (same DP
    // inputs). The extra allowance is clamped to [0, 1].
    replan_event replan_valve(const network& net,
                              const scenario_phase& ph,
                              replan_reason reason, std::uint64_t frame,
                              int level, double budget_step,
                              double latency_budget_ms);

    // Re-measures the shared gate-level mode frontier
    // (frontier_cache::refresh) and rebuilds `net`'s cached layer
    // frontiers against it.
    replan_event refresh_frontier(const network& net,
                                  const scenario_phase& ph,
                                  std::uint64_t frame);

    int versions_issued() const noexcept { return version_; }
    const governor_config& config() const noexcept { return cfg_; }

private:
    network_state& prepare_mutable(const network& net);
    replan_event replan_with(const network& net, replan_reason reason,
                             std::uint64_t frame, double accuracy_budget,
                             double latency_budget_ms);
    double effective_budget(const network& net,
                            const scenario_phase& ph) const;
    void rebuild_frontiers(network_state& st);

    envision_model model_;
    governor_config cfg_;
    precision_planner planner_;          // frontier_search, time-aware
    precision_planner boot_planner_;     // heuristic_measured fallback
    std::map<std::string, network_state> states_;
    // Effective accuracy budgets tightened by drift, keyed "net/phase".
    std::map<std::string, double> budget_override_;
    int version_ = 0;
};

} // namespace dvafs
