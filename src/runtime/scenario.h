// Streaming scenario descriptions for the DVAFS runtime (src/runtime/).
//
// A scenario is a sequence of *phases*, each naming a network, an accuracy
// budget, a frame-rate target and a synthetic input-stream distribution --
// the workload shape of the paper's always-on use cases (Sec. V): a
// low-precision detector watching a cheap stream, escalating to a
// full-precision recognizer when something happens. The stream engine
// (stream_engine.h) executes phases frame-by-frame; the adaptive governor
// (adaptive_governor.h) re-plans operating points at every phase boundary
// and on detected accuracy drift.

#pragma once

#include "cnn/network.h"
#include "cnn/tensor.h"

#include <cstdint>
#include <string>
#include <vector>

namespace dvafs {

// One streaming phase: `frames` frames of `networks[network]` arriving at
// `target_fps` (per-frame deadline = 1000 / target_fps ms), planned under
// `accuracy_budget` extra accuracy loss.
struct scenario_phase {
    std::string name;
    std::size_t network = 0;      // index into scenario::networks
    int frames = 32;
    double target_fps = 30.0;
    double accuracy_budget = 0.0;
    // Input-stream distribution: pixel = clamp(gaussian(mean, spread)) +
    // noise * gaussian(0, 1). `noise` models sensor degradation within a
    // phase -- quantization hurts noisy inputs more than the clean teacher
    // sweep predicted, which is what the drift probes detect.
    double input_mean = 0.25;
    double input_spread = 0.35;
    double input_noise = 0.0;
};

struct scenario {
    std::string name;
    std::vector<network> networks; // owned; phases index into this
    std::vector<scenario_phase> phases;
    std::uint64_t stream_seed = 99;

    std::size_t total_frames() const noexcept;
    // Throws std::invalid_argument on out-of-range network indices,
    // empty phases or non-positive frame rates.
    void validate() const;
};

// Deterministic synthetic input for global frame `frame_index` of phase
// `ph`: the RNG is seeded from (stream_seed, frame_index), so generation
// is independent of batching order and thread count (the scheduler's
// bit-identity contract).
tensor make_stream_frame(const network& net, const scenario_phase& ph,
                         std::uint64_t stream_seed,
                         std::uint64_t frame_index);

// The canonical two-phase cascade of the example and the runtime bench:
// an always-on low-precision detector phase (generous accuracy budget,
// high frame rate, noisy stream) escalating to a full-precision recognizer
// phase (zero budget, lower frame rate).
scenario make_cascade_scenario(network detector, network recognizer,
                               int detector_frames, int recognizer_frames);

} // namespace dvafs
