#include "runtime/fault_injector.h"

#include "runtime/scenario.h"
#include "util/rng.h"

#include <algorithm>
#include <stdexcept>

namespace dvafs {

double fault_injector::noise_delta(std::uint64_t frame) const noexcept
{
    double d = 0.0;
    for (const drift_fault& f : script_.drift) {
        if (f.frames.contains(frame)) {
            d += f.extra_noise;
        }
    }
    return d;
}

double fault_injector::period_scale(std::uint64_t frame) const noexcept
{
    double s = 1.0;
    for (const rate_fault& f : script_.rate) {
        if (f.frames.contains(frame)) {
            s *= f.period_scale;
        }
    }
    return s;
}

double fault_injector::service_scale(std::uint64_t frame) const noexcept
{
    double s = 1.0;
    for (const service_fault& f : script_.service) {
        if (f.frames.contains(frame)) {
            s *= f.service_scale;
        }
    }
    return s;
}

bool fault_injector::active(std::uint64_t frame) const noexcept
{
    return noise_delta(frame) != 0.0 || period_scale(frame) != 1.0
           || service_scale(frame) != 1.0;
}

std::uint64_t fault_injector::next_change(std::uint64_t frame) const noexcept
{
    std::uint64_t next = no_change;
    const auto consider = [&next, frame](const fault_window& w) {
        if (w.count == 0) {
            return;
        }
        if (w.first > frame) {
            next = std::min(next, w.first);
        }
        if (w.end() > frame) {
            next = std::min(next, w.end());
        }
    };
    for (const drift_fault& f : script_.drift) {
        consider(f.frames);
    }
    for (const rate_fault& f : script_.rate) {
        consider(f.frames);
    }
    for (const service_fault& f : script_.service) {
        consider(f.frames);
    }
    return next;
}

disk_fault fault_injector::on_disk_op(disk_op, const std::string&,
                                      const std::string&)
{
    const std::uint64_t op =
        disk_op_.fetch_add(1, std::memory_order_relaxed);
    for (const cache_fault& f : script_.cache) {
        if (f.fault != disk_fault::none && f.ops.contains(op)) {
            disk_faults_.fetch_add(1, std::memory_order_relaxed);
            return f.fault;
        }
    }
    return disk_fault::none;
}

fault_injector fault_injector::random(std::uint64_t seed,
                                      std::uint64_t frames)
{
    pcg32 rng(seed ^ 0xfa417af17ULL, 0x5eedULL);
    fault_script sc;
    const std::uint64_t n = std::max<std::uint64_t>(frames, 1);
    const auto window = [&rng, n]() {
        fault_window w;
        w.first = static_cast<std::uint64_t>(
            rng.range(0, static_cast<std::int64_t>(n - 1)));
        w.count = static_cast<std::uint64_t>(
            rng.range(1, std::max<std::int64_t>(
                             1, static_cast<std::int64_t>(n / 3))));
        return w;
    };

    const int drifts = static_cast<int>(rng.range(0, 2));
    for (int i = 0; i < drifts; ++i) {
        drift_fault f;
        f.frames = window();
        f.extra_noise = rng.uniform(0.05, 0.5);
        sc.drift.push_back(f);
    }
    const int rates = static_cast<int>(rng.range(0, 2));
    for (int i = 0; i < rates; ++i) {
        rate_fault f;
        f.frames = window();
        // Mostly storms (faster arrivals), occasionally a lull.
        f.period_scale = rng.bernoulli(0.75) ? rng.uniform(0.2, 0.8)
                                             : rng.uniform(1.1, 1.6);
        sc.rate.push_back(f);
    }
    const int services = static_cast<int>(rng.range(0, 2));
    for (int i = 0; i < services; ++i) {
        service_fault f;
        f.frames = window();
        f.service_scale = rng.uniform(1.2, 3.0);
        sc.service.push_back(f);
    }
    // One op-windowed cache fault of a random kind; disk traffic is
    // bounded, so a generous window exercises the fault on whatever ops
    // the run actually issues.
    if (rng.bernoulli(0.5)) {
        cache_fault f;
        f.ops.first = static_cast<std::uint64_t>(rng.range(0, 4));
        f.ops.count = static_cast<std::uint64_t>(rng.range(1, 16));
        constexpr disk_fault kinds[] = {
            disk_fault::slow_read, disk_fault::corrupt,
            disk_fault::transient, disk_fault::enospc};
        f.fault = kinds[rng.range(0, 3)];
        sc.cache.push_back(f);
    }
    return fault_injector(std::move(sc));
}

fault_window phase_window(const scenario& sc, std::size_t phase_index)
{
    if (phase_index >= sc.phases.size()) {
        throw std::invalid_argument(
            "phase_window: phase index out of range");
    }
    fault_window w;
    for (std::size_t i = 0; i < phase_index; ++i) {
        w.first += sc.phases[i].frames > 0
                       ? static_cast<std::uint64_t>(sc.phases[i].frames)
                       : 0;
    }
    w.count = sc.phases[phase_index].frames > 0
                  ? static_cast<std::uint64_t>(
                        sc.phases[phase_index].frames)
                  : 0;
    return w;
}

} // namespace dvafs
