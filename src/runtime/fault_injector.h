// Deterministic fault injection for the streaming runtime.
//
// A fault_injector carries a *script*: frame-windowed adversities plus a
// disk-operation-windowed cache-fault schedule, all seeded and replayable
// -- the same script produces the same faults at any thread count, so the
// engine's bit-identity contract survives injection. Fault classes:
//
//  * drift bursts   -- extra input-sensor noise on a global-frame window
//                      (the engine adds it to the phase's input_noise
//                      before synthesizing each frame), the noisy-phase
//                      regime that defeats the clean teacher sweep;
//  * rate bursts    -- an arrival-period scale on a frame window
//                      (scale < 1 = frames arrive faster: a deadline
//                      storm; scale > 1 = a lull). The engine shrinks the
//                      effective per-frame deadline accordingly, which is
//                      what drives the overload valve;
//  * service overruns -- a modeled service-time scale on a frame window
//                      (scale > 1 = the platform slowed down: thermal
//                      throttling, co-tenant interference), creating
//                      deadline overruns without touching arrivals;
//  * cache faults   -- a disk_fault (util/disk_store.h) on a window of
//                      disk-store *operations* (counted process-wide
//                      while the injector is installed as the hook):
//                      slow reads, corrupt entries, transient I/O errors,
//                      ENOSPC on write.
//
// Frame-scoped faults are pure functions of the script and the global
// frame index (thread-safe const reads). Cache faults consume an atomic
// operation counter -- deterministic per operation *sequence*; the
// measurement caches only affect speed, never results, so their ordering
// does not perturb streamed outcomes. Install with
// scoped_disk_fault_hook(&injector).
//
// Scenario fuzzing: fault_injector::random(seed, frames) draws a random
// script (burst counts, windows, magnitudes) from a PCG32 stream, the
// generator behind tests/test_runtime_fuzz.cpp and the soak harness's
// scripted adversity (bench/bench_runtime_soak.cpp). Fault taxonomy and
// the overload-valve response are documented in docs/robustness.md.

#pragma once

#include "util/disk_store.h"

#include <atomic>
#include <cstdint>
#include <limits>
#include <vector>

namespace dvafs {

struct scenario; // runtime/scenario.h

// A half-open window [first, first + count) of frames or disk ops.
struct fault_window {
    std::uint64_t first = 0;
    std::uint64_t count = 0;

    bool contains(std::uint64_t i) const noexcept
    {
        return i >= first && i - first < count;
    }
    std::uint64_t end() const noexcept { return first + count; }
};

struct drift_fault {
    fault_window frames;
    double extra_noise = 0.0; // added to the phase's input_noise
};

struct rate_fault {
    fault_window frames;
    double period_scale = 1.0; // effective period multiplier (<1 = storm)
};

struct service_fault {
    fault_window frames;
    double service_scale = 1.0; // modeled service-time multiplier (>1)
};

struct cache_fault {
    fault_window ops; // indexes the injector's disk-operation counter
    disk_fault fault = disk_fault::none;
};

struct fault_script {
    std::vector<drift_fault> drift;
    std::vector<rate_fault> rate;
    std::vector<service_fault> service;
    std::vector<cache_fault> cache;

    bool empty() const noexcept
    {
        return drift.empty() && rate.empty() && service.empty()
               && cache.empty();
    }
};

class fault_injector : public disk_fault_hook {
public:
    static constexpr std::uint64_t no_change =
        std::numeric_limits<std::uint64_t>::max();

    fault_injector() = default;
    explicit fault_injector(fault_script script)
        : script_(std::move(script))
    {
    }

    // Seeded random script over `frames` total stream frames: a handful
    // of drift/rate/service bursts with overlapping windows plus a cache
    // fault window per kind -- the fuzzer's adversity generator. Every
    // value is drawn from one PCG32 stream, so (seed, frames) replays
    // exactly.
    static fault_injector random(std::uint64_t seed,
                                 std::uint64_t frames);

    const fault_script& script() const noexcept { return script_; }

    // -- frame-scoped faults (pure, thread-safe) ------------------------------

    // Sum of active drift bursts at `frame`.
    double noise_delta(std::uint64_t frame) const noexcept;
    // Product of active arrival-period scales at `frame`.
    double period_scale(std::uint64_t frame) const noexcept;
    // Product of active service-time scales at `frame`.
    double service_scale(std::uint64_t frame) const noexcept;
    // True when any frame-scoped fault is active at `frame`.
    bool active(std::uint64_t frame) const noexcept;

    // The first frame > `frame` where any frame-scoped fault starts or
    // ends (no_change when none): the engine cuts its admission batches
    // here so every batch sees constant fault state.
    std::uint64_t next_change(std::uint64_t frame) const noexcept;

    // -- cache faults (atomic op counter) -------------------------------------

    disk_fault on_disk_op(disk_op op, const std::string& kind,
                          const std::string& key) override;

    std::uint64_t disk_ops() const noexcept
    {
        return disk_op_.load(std::memory_order_relaxed);
    }
    std::uint64_t disk_faults_injected() const noexcept
    {
        return disk_faults_.load(std::memory_order_relaxed);
    }

private:
    fault_script script_;
    std::atomic<std::uint64_t> disk_op_{0};
    std::atomic<std::uint64_t> disk_faults_{0};
};

// The frame window phase `phase_index` occupies in `sc`'s global frame
// numbering -- the helper for scripting faults "per phase".
fault_window phase_window(const scenario& sc, std::size_t phase_index);

} // namespace dvafs
