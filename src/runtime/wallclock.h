// Measured wall-clock helper shared by the governor and the stream
// engine. Reporting only: the runtime's determinism contract is that
// measured time never feeds back into any decision.

#pragma once

#include <chrono>

namespace dvafs {

inline double elapsed_ms_since(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

} // namespace dvafs
