#include "runtime/stream_engine.h"

#include "analysis/plan_verifier.h"
#include "runtime/wallclock.h"

#include <algorithm>
#include <chrono>
#include <string>

namespace dvafs {

stream_result stream_engine::run(const scenario& sc,
                                 const fault_injector* faults)
{
    sc.validate();
    stream_result res;

    // Re-plan gate: every plan the governor hands back is statically
    // verified against its network's cached frontiers before the stream
    // accepts it (the heuristic boot fallback is exempt -- its closed-form
    // points are deliberately not frontier members).
    const auto gate_plan = [this, &res](const network& net,
                                        const replan_event& ev,
                                        const char* what) {
        if (!cfg_.verify_replans) {
            return;
        }
        lint_report rep = verify_plan(
            net, ev.plan, &governor_.prepare(net).frontiers,
            std::string(what) + " plan v"
                + std::to_string(ev.plan_version) + " for '" + net.name()
                + "'");
        if (!rep.ok()) {
            ++res.stats.verify_failures;
            throw verification_error(std::move(rep));
        }
    };

    // Admission: the slow per-network planning state (teacher sweep,
    // frontiers, boot plan) is built before the first frame arrives, so
    // in-stream re-plans only ever pay the DP.
    {
        const auto t0 = std::chrono::steady_clock::now();
        for (const network& net : sc.networks) {
            governor_.prepare(net);
        }
        res.prepare_ms = elapsed_ms_since(t0);
    }

    std::uint64_t g = 0; // global frame index
    const network* prev_net = nullptr;
    network_plan active;
    int active_version = 0;
    bool has_pending = false;
    replan_event pending;
    std::uint64_t activate_at = 0;

    for (std::size_t pi = 0; pi < sc.phases.size(); ++pi) {
        const scenario_phase& ph = sc.phases[pi];
        const network& net = sc.networks[ph.network];
        const double period_ms = 1000.0 / ph.target_fps;

        // Phase boundary: issue a re-plan. It activates
        // replan_latency_frames later; until then the stream keeps running
        // on the previous plan (same network) or the incoming network's
        // heuristic boot plan (network switch) -- never stalls.
        replan_event ev = governor_.replan(
            net, ph,
            g == 0 ? replan_reason::startup : replan_reason::phase_change,
            g);
        gate_plan(net, ev, "re-plan");
        res.planning_ms += ev.planning_ms;
        ++res.stats.replans;
        int phase_replans = 1;
        if (g == 0 || cfg_.replan_latency_frames <= 0) {
            active = ev.plan;
            active_version = ev.plan_version;
            has_pending = false;
        } else {
            if (&net != prev_net) {
                active = governor_.prepare(net).fallback;
                active_version = 0;
            }
            pending = ev;
            has_pending = true;
            activate_at =
                g + static_cast<std::uint64_t>(cfg_.replan_latency_frames);
        }
        res.replans.push_back(std::move(ev));

        const std::size_t phase_first = res.frames.size();
        const std::uint64_t phase_end =
            g + static_cast<std::uint64_t>(ph.frames);
        const bool probing = cfg_.probe_interval > 0
                             && cfg_.probe_window > 0;
        std::uint64_t next_probe =
            probing ? g + static_cast<std::uint64_t>(cfg_.probe_interval)
                    : phase_end;
        int escalations = 0;
        bool phase_stale = false;

        // Overload-valve state, reset per phase (the boundary re-plan is
        // a fresh nominal plan; pressure history does not carry over).
        const valve_config& vc = cfg_.valve;
        int valve_level = 0;
        int over_streak = 0;
        int under_streak = 0;
        std::uint64_t last_over_frame = 0;
        // Outgoing plans' total_time_ms / total_energy_mj, one entry per
        // shed level: recovery only fires when the stacked plan would fit
        // comfortably again, so persistent pressure cannot oscillate the
        // valve.
        std::vector<double> level_time_stack;
        std::vector<double> level_energy_stack;

        while (g < phase_end) {
            if (has_pending && g >= activate_at) {
                active = pending.plan;
                active_version = pending.plan_version;
                has_pending = false;
            }
            // Fault state for this batch: constant, because batches are
            // additionally cut at fault-window boundaries below.
            const double pscale = faults ? faults->period_scale(g) : 1.0;
            const double sscale = faults ? faults->service_scale(g) : 1.0;
            const double ndelta = faults ? faults->noise_delta(g) : 0.0;
            const double eff_period = period_ms * pscale;

            // Admit up to max_in_flight frames, but never across a plan
            // activation, a probe boundary or a fault-window edge (all
            // frame-indexed, so batching cannot change any outcome).
            std::uint64_t batch_end = std::min(
                phase_end,
                g + static_cast<std::uint64_t>(
                        std::max(1, cfg_.max_in_flight)));
            if (has_pending) {
                batch_end = std::min(batch_end, activate_at);
            }
            if (next_probe > g) {
                batch_end = std::min(batch_end, next_probe);
            }
            if (faults) {
                batch_end = std::min(batch_end, faults->next_change(g));
            }

            scenario_phase eff_ph = ph;
            eff_ph.input_noise += ndelta;
            std::vector<tensor> frames;
            frames.reserve(static_cast<std::size_t>(batch_end - g));
            for (std::uint64_t f = g; f < batch_end; ++f) {
                frames.push_back(
                    make_stream_frame(net, eff_ph, sc.stream_seed, f));
            }
            const std::uint64_t batch_first = g;
            scheduler_.run_batch(net, active, frames, g, pi,
                                 active_version, eff_period, sscale,
                                 res.frames, res.ledger);
            g = batch_end;
            if (faults && faults->active(batch_first)) {
                res.stats.faulted_frames += batch_end - batch_first;
            }

            // Pressure bookkeeping: latency utilization against the
            // effective period, energy utilization against the optional
            // per-frame energy budget. Constant across the batch (same
            // plan, same fault state), but streaks advance per frame so
            // hysteresis is independent of batch size.
            const double frame_ms = active.total_time_ms * sscale;
            double pressure = frame_ms / eff_period;
            if (vc.energy_budget_mj > 0.0) {
                pressure = std::max(pressure, active.total_energy_mj
                                                  / vc.energy_budget_mj);
            }
            for (std::uint64_t f = batch_first; f < batch_end; ++f) {
                if (pressure > 1.0) {
                    ++over_streak;
                    under_streak = 0;
                    last_over_frame = f;
                } else if (pressure <= vc.recover_below) {
                    ++under_streak;
                    over_streak = 0;
                } else {
                    // Dead band: neither overloaded nor comfortably calm.
                    over_streak = 0;
                    under_streak = 0;
                }
            }

            // Valve decisions: one per batch at most, never while another
            // re-plan is in flight (its activation resolves the pressure
            // picture first).
            if (vc.enabled && !has_pending && g < phase_end) {
                if (over_streak >= vc.shed_after
                    && valve_level < vc.max_level) {
                    replan_event sev = governor_.replan_valve(
                        net, ph, replan_reason::shed, g, valve_level + 1,
                        vc.budget_step, eff_period);
                    gate_plan(net, sev, "shed");
                    res.planning_ms += sev.planning_ms;
                    level_time_stack.push_back(active.total_time_ms);
                    level_energy_stack.push_back(active.total_energy_mj);
                    ++valve_level;
                    res.stats.max_valve_level = std::max(
                        res.stats.max_valve_level, valve_level);
                    ++res.stats.shed_events;
                    over_streak = 0;
                    under_streak = 0;
                    pending = sev;
                    has_pending = true;
                    activate_at =
                        g + static_cast<std::uint64_t>(
                                std::max(0, cfg_.replan_latency_frames));
                    ++phase_replans;
                    res.replans.push_back(std::move(sev));
                } else if (under_streak >= vc.recover_after
                           && valve_level > 0
                           && level_time_stack.back()
                                  <= vc.recover_below * eff_period
                           && (vc.energy_budget_mj <= 0.0
                               || level_energy_stack.back()
                                      <= vc.recover_below
                                             * vc.energy_budget_mj)) {
                    // Restore one level: the stacked pre-shed plan would
                    // comfortably fit the current effective period, so
                    // re-planning a level down cannot re-trip the valve
                    // immediately. Recovery to level 0 runs under the
                    // nominal period -- DP inputs identical to the phase
                    // boundary, so the original plan is restored exactly.
                    const int to_level = valve_level - 1;
                    const double budget_ms =
                        to_level == 0 ? period_ms : eff_period;
                    replan_event rev = governor_.replan_valve(
                        net, ph, replan_reason::recover, g, to_level,
                        vc.budget_step, budget_ms);
                    gate_plan(net, rev, "recover");
                    res.planning_ms += rev.planning_ms;
                    level_time_stack.pop_back();
                    level_energy_stack.pop_back();
                    valve_level = to_level;
                    ++res.stats.recover_events;
                    if (to_level == 0) {
                        res.stats.recovery_frames = g - last_over_frame;
                    }
                    over_streak = 0;
                    under_streak = 0;
                    pending = rev;
                    has_pending = true;
                    activate_at =
                        g + static_cast<std::uint64_t>(
                                std::max(0, cfg_.replan_latency_frames));
                    ++phase_replans;
                    res.replans.push_back(std::move(rev));
                }
            }

            if (!probing || g != next_probe || g >= phase_end) {
                continue;
            }
            next_probe += static_cast<std::uint64_t>(cfg_.probe_interval);

            // Drift probe: score the most recent frames *served by the
            // active plan* against their float-teacher argmaxes -- a swap
            // inside the window would otherwise blame the new plan for
            // the old plan's misses -- and only once the active plan has
            // served a full window.
            std::size_t window = 0;
            std::size_t hits = 0;
            for (std::size_t i = res.frames.size();
                 i-- > phase_first
                 && window < static_cast<std::size_t>(cfg_.probe_window);) {
                if (res.frames[i].plan_version != active_version) {
                    break;
                }
                ++window;
                hits += res.frames[i].predicted == res.frames[i].teacher;
            }
            if (window < static_cast<std::size_t>(cfg_.probe_window)) {
                continue;
            }
            const double window_accuracy =
                static_cast<double>(hits) / static_cast<double>(window);
            // The accuracy floor: the governor's *current* reference
            // (stage-two escalations update it) minus the loss the DP
            // knowingly spent. A shed plan's larger planned loss lowers
            // the floor with it, so the valve and the drift probe never
            // fight over deliberately spent accuracy.
            const double floor = governor_.prepare(net).reference_accuracy
                                 - active.planned_accuracy_loss;
            if (has_pending || phase_stale
                || escalations >= cfg_.max_escalations_per_phase
                || window_accuracy >= floor - cfg_.drift_margin) {
                continue;
            }

            replan_event dev = governor_.escalate(net, ph, g);
            gate_plan(net, dev, "escalation");
            if (dev.plan_stale) {
                // No lever left (budget floored, requirements saturated):
                // keep serving the converged plan and stop escalating for
                // the rest of the phase instead of looping.
                ++res.stats.stale_escalations;
                phase_stale = true;
            }
            ++res.stats.escalations;
            // Verify the escalation on the live window: the probe's
            // batch_evaluator is based at the outgoing overlay, so pricing
            // the candidate recomputes only the layers it changed.
            {
                std::vector<tensor> wframes;
                std::vector<int> wlabels;
                for (std::size_t i = res.frames.size() - window;
                     i < res.frames.size(); ++i) {
                    scenario_phase wph = ph;
                    wph.input_noise +=
                        faults ? faults->noise_delta(res.frames[i].frame)
                               : 0.0;
                    wframes.push_back(make_stream_frame(
                        net, wph, sc.stream_seed, res.frames[i].frame));
                    wlabels.push_back(res.frames[i].teacher);
                }
                const window_probe probe(net, std::move(wframes),
                                         std::move(wlabels),
                                         plan_overlay(net, active),
                                         cfg_.threads);
                dev.window_accuracy_before = probe.accuracy();
                dev.window_accuracy_after =
                    probe.accuracy(plan_overlay(net, dev.plan));
            }
            res.planning_ms += dev.planning_ms;
            pending = dev;
            has_pending = true;
            activate_at =
                g + static_cast<std::uint64_t>(
                        std::max(0, cfg_.replan_latency_frames));
            ++escalations;
            ++phase_replans;
            res.replans.push_back(std::move(dev));
        }

        // Phase roll-up.
        phase_stats ps;
        ps.name = ph.name;
        ps.frames = res.frames.size() - phase_first;
        ps.replans = phase_replans;
        std::size_t hits = 0;
        std::size_t deadline_hits = 0;
        for (std::size_t i = phase_first; i < res.frames.size(); ++i) {
            const frame_result& fr = res.frames[i];
            ps.mean_frame_ms += fr.time_ms;
            ps.energy_per_frame_mj += fr.energy_mj;
            hits += fr.predicted == fr.teacher;
            deadline_hits += fr.deadline_met;
        }
        const double n = static_cast<double>(ps.frames);
        ps.mean_frame_ms /= n;
        ps.energy_per_frame_mj /= n;
        ps.stream_accuracy = static_cast<double>(hits) / n;
        ps.deadline_hit_rate = static_cast<double>(deadline_hits) / n;
        ps.sustained_fps =
            std::min(ph.target_fps, 1000.0 / ps.mean_frame_ms);
        ps.deadline_met = active.total_time_ms <= period_ms;
        res.phases.push_back(ps);

        prev_net = &net;
    }

    // Stream roll-up.
    std::size_t hits = 0;
    for (const frame_result& fr : res.frames) {
        res.mean_frame_ms += fr.time_ms;
        res.total_energy_mj += fr.energy_mj;
        hits += fr.predicted == fr.teacher;
        res.stats.deadline_misses += !fr.deadline_met;
    }
    res.stats.frames_served = res.frames.size();
    // The engine serves every admitted frame by construction; the counter
    // exists so tests assert the no-drop contract explicitly.
    res.stats.frames_dropped =
        sc.total_frames() - res.frames.size();
    const double n = static_cast<double>(res.frames.size());
    res.mean_frame_ms /= n;
    res.stream_accuracy = static_cast<double>(hits) / n;
    for (const phase_stats& ps : res.phases) {
        res.sustained_fps +=
            ps.sustained_fps * static_cast<double>(ps.frames) / n;
    }
    return res;
}

} // namespace dvafs
