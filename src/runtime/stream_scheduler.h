// Batched frame execution for the streaming runtime.
//
// The scheduler owns the per-frame hot path: it forwards in-flight frames
// through the phase's network under the active plan's quantization overlay
// (fanned out on util/parallel with per-frame result slots, so outcomes
// are bit-identical for any thread count), scores each frame against the
// float teacher, and attributes every frame's energy to the energy ledger
// per power domain from the plan's envision power decomposition.
//
// Drift diagnosis rides on cnn/quant_analysis's batch_evaluator: a
// window_probe bases the evaluator at the active plan's overlay over the
// most recent frames, so pricing a candidate escalation (bump one layer's
// bits) recomputes only the perturbed suffix -- the same prefix-activation
// caching the offline sweeps use, applied across streamed frames.

#pragma once

#include "cnn/quant_analysis.h"
#include "core/planner.h"
#include "energy/energy_ledger.h"
#include "runtime/scenario.h"

#include <cstdint>
#include <vector>

namespace dvafs {

// One streamed frame's outcome (the per-frame log of the scenario engine).
struct frame_result {
    std::uint64_t frame = 0;    // global frame index
    std::size_t phase = 0;      // index into scenario::phases
    int plan_version = 0;       // governor plan serving this frame
    int predicted = -1;         // argmax under the plan's quantization
    int teacher = -1;           // float-network argmax (drift reference)
    double time_ms = 0.0;       // modeled service time (plan total)
    double energy_mj = 0.0;
    bool deadline_met = true;   // time_ms <= the phase's frame period
};

// The quant overlay a plan schedules: weighted layers at the plan's
// (weight, input) bits, everything else float.
std::vector<layer_quant> plan_overlay(const network& net,
                                      const network_plan& plan);

class stream_scheduler {
public:
    // threads = 0 -> hardware default (the parallel_for convention).
    explicit stream_scheduler(unsigned threads = 0) : threads_(threads) {}

    // Runs `frames` through `net` under `plan`, appending one result per
    // frame (input order) to `out` and attributing each frame's energy to
    // `ledger` per power domain. `period_ms` is the *effective* frame
    // period for the per-frame deadline flag (the engine shrinks it under
    // an injected rate burst); `service_scale` multiplies the plan's
    // modeled service time (>1 under an injected service overrun), so a
    // scripted fault shows up as honest per-frame latency without
    // touching the energy attribution.
    void run_batch(const network& net, const network_plan& plan,
                   const std::vector<tensor>& frames,
                   std::uint64_t first_frame_index, std::size_t phase,
                   int plan_version, double period_ms,
                   double service_scale,
                   std::vector<frame_result>& out,
                   energy_ledger& ledger) const;

private:
    unsigned threads_ = 0;
};

// Sliding-window escalation probe: a batch_evaluator over the last few
// streamed frames (teacher-labelled by their float argmaxes), based at the
// active plan's overlay. accuracy() prices the current plan on the live
// window; accuracy(overlay) prices a candidate escalation by suffix-only
// recomputation. The network must outlive the probe.
class window_probe {
public:
    window_probe(const network& net, std::vector<tensor> window,
                 std::vector<int> teacher_labels,
                 std::vector<layer_quant> base, unsigned threads = 0);

    double accuracy() const { return eval_.accuracy(eval_.base()); }
    double accuracy(const std::vector<layer_quant>& overlay) const
    {
        return eval_.accuracy(overlay);
    }

private:
    teacher_dataset data_; // declared before eval_ (eval_ references it)
    batch_evaluator eval_;
};

} // namespace dvafs
