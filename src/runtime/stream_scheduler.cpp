#include "runtime/stream_scheduler.h"

#include "envision/envision.h"
#include "util/parallel.h"

#include <stdexcept>
#include <utility>

namespace dvafs {

std::vector<layer_quant> plan_overlay(const network& net,
                                      const network_plan& plan)
{
    const std::vector<std::size_t> weighted = net.weighted_layers();
    if (weighted.size() != plan.layers.size()) {
        throw std::invalid_argument(
            "plan_overlay: plan does not match the network");
    }
    std::vector<layer_quant> overlay(net.depth());
    for (std::size_t k = 0; k < weighted.size(); ++k) {
        overlay[weighted[k]].weight_bits = plan.layers[k].weight_bits;
        overlay[weighted[k]].input_bits = plan.layers[k].input_bits;
    }
    return overlay;
}

void stream_scheduler::run_batch(const network& net,
                                 const network_plan& plan,
                                 const std::vector<tensor>& frames,
                                 std::uint64_t first_frame_index,
                                 std::size_t phase, int plan_version,
                                 double period_ms, double service_scale,
                                 std::vector<frame_result>& out,
                                 energy_ledger& ledger) const
{
    const std::vector<layer_quant> overlay = plan_overlay(net, plan);
    const std::vector<layer_quant> float_overlay(net.depth());

    // Quantized + teacher forwards fan out per frame into preallocated
    // slots; the serial tail below reads them in index order, so the log
    // and the ledger are bit-identical for any thread count.
    std::vector<std::pair<int, int>> argmaxes(frames.size());
    parallel_for(frames.size(), threads_, [&](std::size_t i) {
        argmaxes[i].first = argmax(net.forward(frames[i], overlay));
        argmaxes[i].second =
            argmax(net.forward(frames[i], float_overlay));
    });

    for (std::size_t i = 0; i < frames.size(); ++i) {
        frame_result fr;
        fr.frame = first_frame_index + i;
        fr.phase = phase;
        fr.plan_version = plan_version;
        fr.predicted = argmaxes[i].first;
        fr.teacher = argmaxes[i].second;
        fr.time_ms = plan.total_time_ms * service_scale;
        fr.energy_mj = plan.total_energy_mj;
        fr.deadline_met = period_ms <= 0.0 || fr.time_ms <= period_ms;
        out.push_back(fr);

        // Per-domain attribution from the plan's power decomposition:
        // mW x ms = uJ = 1e6 pJ per layer and domain.
        for (const layer_plan& lp : plan.layers) {
            for (const power_domain d :
                 {power_domain::mem, power_domain::nas,
                  power_domain::as}) {
                ledger.add_pj(d,
                              domain_mw(lp.report, d) * lp.time_ms * 1e6);
            }
        }
    }
}

window_probe::window_probe(const network& net, std::vector<tensor> window,
                           std::vector<int> teacher_labels,
                           std::vector<layer_quant> base, unsigned threads)
    : data_{std::move(window), std::move(teacher_labels)},
      eval_(net, data_, threads)
{
    eval_.set_base(std::move(base));
}

} // namespace dvafs
