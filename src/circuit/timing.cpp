#include "circuit/timing.h"

#include <algorithm>

namespace dvafs {

timing_report timing_analyzer::analyze(double vdd) const
{
    return run(vdd, nullptr);
}

timing_report timing_analyzer::analyze_mode(
    double vdd, const std::vector<std::pair<net_id, bool>>& tied) const
{
    const std::vector<bool> is_static = find_static_gates(nl_, tied);
    return run(vdd, &is_static);
}

double timing_analyzer::slack_ps(
    double period_ps, double vdd,
    const std::vector<std::pair<net_id, bool>>& tied) const
{
    return period_ps - analyze_mode(vdd, tied).critical_path_ps;
}

std::size_t timing_analyzer::violations(
    double period_ps, double vdd,
    const std::vector<std::pair<net_id, bool>>& tied) const
{
    const timing_report rep = analyze_mode(vdd, tied);
    std::size_t count = 0;
    for (const auto& [name, id] : nl_.outputs()) {
        if (rep.arrival_ps[id] > period_ps) {
            ++count;
        }
    }
    return count;
}

timing_report timing_analyzer::run(double vdd,
                                   const std::vector<bool>* is_static) const
{
    timing_report rep;
    rep.arrival_ps.assign(nl_.size(), 0.0);

    const auto& gates = nl_.gates();
    for (std::size_t i = 0; i < gates.size(); ++i) {
        const gate& g = gates[i];
        if (g.kind == gate_kind::input || g.kind == gate_kind::constant) {
            rep.arrival_ps[i] = 0.0;
            continue;
        }
        if (is_static && (*is_static)[i]) {
            // Output is mode-constant: settles long before the clock edge.
            rep.arrival_ps[i] = 0.0;
            continue;
        }
        ++rep.active_gates;
        double in_arrival = 0.0;
        const int n = fanin_count(g.kind);
        if (n >= 1) {
            in_arrival = std::max(in_arrival, rep.arrival_ps[g.in0]);
        }
        if (n >= 2) {
            in_arrival = std::max(in_arrival, rep.arrival_ps[g.in1]);
        }
        if (n >= 3) {
            in_arrival = std::max(in_arrival, rep.arrival_ps[g.in2]);
        }
        rep.arrival_ps[i] = in_arrival + tech_.gate_delay_ps(g.kind, vdd);
        if (rep.arrival_ps[i] > rep.critical_path_ps) {
            rep.critical_path_ps = rep.arrival_ps[i];
            rep.endpoint = static_cast<net_id>(i);
        }
    }
    return rep;
}

} // namespace dvafs
