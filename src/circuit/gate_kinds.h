// The single source of truth for gate semantics.
//
// Every engine that evaluates gates -- the scalar reference simulator, the
// 64-lane interpreter, the compiled wide-word kernels and the three-valued
// constant propagation behind cone pruning and the timing analyzer -- used
// to carry its own per-kind switch table; a new gate kind meant editing
// them all in lock-step. This header collapses them into one description:
//
//  * gate_kind_arity(k)  -- fanin count (netlist::fanin_count delegates).
//  * eval_gate_kind(...) -- the bitwise truth table, generic over any word
//    type with &, |, ^ operators. Passing `ones` (the all-ones word: 1 for
//    0/1 scalars, ~0 for uint64_t lanes, a broadcast wide_word) expresses
//    inversion as xor, so one body serves every lane width.
//  * eval_gate_kind_x(...) -- three-valued {0, 1, X} evaluation *derived*
//    from the binary table by enumerating the unknown inputs (at most 8
//    assignments for 3-input gates): if every completion agrees the gate
//    is constant, otherwise X. Deriving it keeps the constant propagation
//    incapable of disagreeing with the simulators.
//
// `input` and `constant` are not evaluated here: inputs are set externally
// and constants carry their value in gate::aux; callers handle both before
// dispatching.

#pragma once

#include "circuit/netlist.h"

#include <cstdint>

namespace dvafs {

constexpr int gate_kind_arity(gate_kind k) noexcept
{
    switch (k) {
    case gate_kind::input:
    case gate_kind::constant:
        return 0;
    case gate_kind::buf:
    case gate_kind::not_g:
        return 1;
    case gate_kind::and_g:
    case gate_kind::or_g:
    case gate_kind::xor_g:
    case gate_kind::nand_g:
    case gate_kind::nor_g:
    case gate_kind::xnor_g:
        return 2;
    case gate_kind::and3_g:
    case gate_kind::or3_g:
    case gate_kind::mux_g:
    case gate_kind::maj_g:
        return 3;
    }
    return 0;
}

// Bitwise evaluation of one combinational gate kind. Word must support
// & | ^ (wide_word, uint64_t, or 0/1-valued uint8_t all do); `ones` is the
// all-ones word of that type. Every function below is lane-independent, so
// the same body is correct for 1, 64 or 64*W lanes. Callers must not pass
// gate_kind::input or gate_kind::constant.
template <class Word>
constexpr Word eval_gate_kind(gate_kind k, const Word& a, const Word& b,
                              const Word& c, const Word& ones)
{
    switch (k) {
    case gate_kind::buf:
        return a;
    case gate_kind::not_g:
        return a ^ ones;
    case gate_kind::and_g:
        return a & b;
    case gate_kind::or_g:
        return a | b;
    case gate_kind::xor_g:
        return a ^ b;
    case gate_kind::nand_g:
        return (a & b) ^ ones;
    case gate_kind::nor_g:
        return (a | b) ^ ones;
    case gate_kind::xnor_g:
        return (a ^ b) ^ ones;
    case gate_kind::and3_g:
        return a & b & c;
    case gate_kind::or3_g:
        return a | b | c;
    case gate_kind::mux_g:
        return (c & b) | ((c ^ ones) & a);
    case gate_kind::maj_g:
        return (a & b) | (b & c) | (a & c);
    default:
        return a; // input/constant: unreachable by contract
    }
}

// Three-valued logic values used by constant propagation.
inline constexpr std::uint8_t ternary_0 = 0;
inline constexpr std::uint8_t ternary_1 = 1;
inline constexpr std::uint8_t ternary_x = 2;

// Three-valued evaluation derived from the binary truth table: unknown
// inputs are enumerated over {0, 1}; the result is constant iff every
// completion produces the same value. This is the complete per-gate
// propagation (it subsumes hand-written dominance rules such as
// "and with a 0 input is 0" or "mux with equal data inputs ignores the
// select"). Fanins beyond the gate's arity are ignored.
constexpr std::uint8_t eval_gate_kind_x(gate_kind k, std::uint8_t a,
                                        std::uint8_t b, std::uint8_t c)
{
    const int arity = gate_kind_arity(k);
    const std::uint8_t in[3] = {a, b, c};
    int unknown[3] = {};
    int n_unknown = 0;
    for (int i = 0; i < arity; ++i) {
        if (in[i] == ternary_x) {
            unknown[n_unknown++] = i;
        }
    }
    std::uint8_t result = ternary_x;
    for (int assign = 0; assign < (1 << n_unknown); ++assign) {
        std::uint8_t v[3] = {a, b, c};
        for (int u = 0; u < n_unknown; ++u) {
            v[unknown[u]] = static_cast<std::uint8_t>((assign >> u) & 1);
        }
        const std::uint8_t r = eval_gate_kind<std::uint8_t>(
            k, v[0], v[1], v[2], std::uint8_t{1});
        if (assign == 0) {
            result = r;
        } else if (r != result) {
            return ternary_x;
        }
    }
    return result;
}

} // namespace dvafs
