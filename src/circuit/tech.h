// Technology models: per-gate-kind switched capacitance and delay, plus the
// alpha-power-law voltage/delay relation used to convert positive timing
// slack into supply-voltage reduction (the "V" in DVAS/DVAFS).
//
// The paper synthesizes its multiplier in a 40 nm LP LVT library at a nominal
// 1.1 V and reports: DVAS at 4 b reaches 0.9 V; DVAFS at 4x4 b reaches about
// 0.7-0.75 V (Fig. 2c); Envision is a 28 nm FDSOI chip running 1.03 V at
// 200 MHz, 0.80 V at 100 MHz, 0.65 V at 50 MHz (Table III). Our models are
// calibrated so that those anchor points fall out of the delay law; the
// calibration is asserted in tests/test_tech.cpp.

#pragma once

#include "circuit/netlist.h"

#include <string>

namespace dvafs {

struct tech_model {
    std::string name;
    double vdd_nom = 1.1;  // nominal supply [V]
    double vth = 0.55;     // effective threshold for the delay law [V]
    double alpha = 2.0;    // velocity-saturation exponent
    double vmin = 0.60;    // minimum reliable operating voltage [V]
    double unit_delay_ps = 12.0; // delay of a reference NAND2 at vdd_nom
    double unit_cap_ff = 0.8;    // switched capacitance of a reference NAND2

    // -- per-gate-kind scale factors (relative to the reference NAND2) ------
    double gate_cap_ff(gate_kind k) const noexcept;
    double gate_delay_ps(gate_kind k, double vdd) const noexcept;

    // Alpha-power delay law, normalized: delay(v) / delay(vdd_nom).
    // delay(v)  proportional to  v / (v - vth)^alpha.
    double delay_scale(double vdd) const;

    // Inverse problem: the largest voltage reduction such that delay grows by
    // at most `delay_ratio` (>= 1). Clamped to [vmin, vdd_nom]. This is the
    // "convert positive slack into lower Vdd" step of DVAS/DVAFS.
    double solve_voltage(double delay_ratio) const;

    // Dynamic energy of one toggle of capacitance `cap_ff` at `vdd`:
    // E = C * V^2, returned in femtojoules (fF * V^2 = fJ).
    static double toggle_energy_fj(double cap_ff, double vdd) noexcept
    {
        return cap_ff * vdd * vdd;
    }
};

// 40 nm LP LVT (multiplier + SIMD processor experiments, Secs. III-A/III-B).
const tech_model& tech_40nm_lp();

// 28 nm FDSOI (Envision experiments, Sec. V).
const tech_model& tech_28nm_fdsoi();

} // namespace dvafs
