// Levelized two-valued logic simulator with switching-activity accounting.
//
// Because gates are stored in topological order, one linear pass evaluates
// the whole netlist. Between consecutive input vectors, every gate whose
// output changes increments a toggle counter; weighted by the per-gate-kind
// switched capacitance from the technology model this yields the dynamic
// energy estimate  E = sum_g toggles(g) * C(g) * V^2  used throughout the
// paper's analysis.

#pragma once

#include "circuit/netlist.h"

#include <cstdint>
#include <vector>

namespace dvafs {

struct tech_model; // circuit/tech.h

class logic_sim {
public:
    explicit logic_sim(const netlist& nl);

    // Sets all primary inputs (order = netlist::inputs()) and evaluates.
    // The first call establishes the baseline; subsequent calls accumulate
    // toggle counts.
    void apply(const std::vector<bool>& input_values);

    // Applies inputs packed into a word per bus (helper for tests).
    void apply_packed(std::uint64_t bits);

    bool value(net_id id) const { return values_.at(id) != 0; }

    // Reads a multi-bit bus given its nets, LSB first. Throws
    // std::invalid_argument for buses wider than 64 nets (which cannot be
    // packed into the return word).
    std::uint64_t read_bus(const std::vector<net_id>& nets) const;

    // -- activity statistics ------------------------------------------------
    std::uint64_t toggles(net_id id) const { return toggles_.at(id); }
    std::uint64_t total_toggles() const noexcept;
    // Toggles weighted by per-gate switched capacitance [fF].
    double switched_capacitance_ff(const tech_model& tech) const;
    // Number of input vectors applied since the last reset (first vector
    // initializes state and is not counted as a transition).
    std::uint64_t transitions() const noexcept { return transitions_; }

    void reset_stats();

private:
    void evaluate();

    const netlist& nl_;
    std::vector<std::uint8_t> values_;
    std::vector<std::uint8_t> prev_;
    std::vector<std::uint64_t> toggles_;
    std::uint64_t transitions_ = 0;
    bool initialized_ = false;
};

// 64-lane bit-parallel variant of logic_sim.
//
// Each net value is a uint64_t word whose bit v is the net's value under
// input vector v of the current batch, so one levelized pass evaluates up
// to 64 consecutive input vectors. Lanes are ordered in time: lane 0 is the
// earliest vector of the batch and lane 63 the latest, and the simulator
// remembers the final lane of the previous batch, so per-net toggle counts
// are computed with popcount over in-word transitions (cur ^ (cur << 1),
// with the previous batch's last value carried into lane 0) and are
// *bit-exact* against scalar logic_sim driven with the same vector stream
// in the same order -- including total_toggles, switched_capacitance_ff and
// transitions. The scalar simulator stays as the reference oracle; the
// differential test in tests/test_sim_engine.cpp asserts the equivalence.
class logic_sim64 {
public:
    explicit logic_sim64(const netlist& nl);

    // Evaluates `count` (1..64) input vectors in one pass. input_words has
    // one word per primary input (order = netlist::inputs()); bit v of
    // input_words[i] is input i's value under vector v. Lanes >= count are
    // ignored. Consecutive calls continue the same vector stream.
    void apply(const std::vector<std::uint64_t>& input_words, int count = 64);

    // Batch word of a net (bits >= last count are garbage).
    std::uint64_t word(net_id id) const { return values_.at(id); }
    // Value of a net under vector `lane` of the last batch.
    bool value(net_id id, int lane) const
    {
        return ((values_.at(id) >> lane) & 1ULL) != 0;
    }

    // Reads a multi-bit bus (LSB first) under vector `lane` of the batch.
    // Throws std::invalid_argument for buses wider than 64 nets.
    std::uint64_t read_bus(const std::vector<net_id>& nets, int lane) const;

    // -- activity statistics (same contract as logic_sim) -------------------
    std::uint64_t toggles(net_id id) const { return toggles_.at(id); }
    std::uint64_t total_toggles() const noexcept;
    double switched_capacitance_ff(const tech_model& tech) const;
    std::uint64_t transitions() const noexcept { return transitions_; }

    // Clears toggle/transition counters but keeps the last applied values,
    // so the next batch's first vector still counts its transition (the
    // same warm-up contract as logic_sim::reset_stats).
    void reset_stats();

private:
    const netlist& nl_;
    std::vector<std::uint64_t> values_;
    std::vector<std::uint8_t> last_; // final-lane value of the previous batch
    std::vector<std::uint64_t> toggles_;
    std::uint64_t transitions_ = 0;
    bool initialized_ = false;
};

// Three-valued constant propagation (values from circuit/gate_kinds.h:
// ternary_0 / ternary_1 / ternary_x): one entry per net, the net's fixed
// value given that the listed inputs are tied to constants, or ternary_x
// when it can still vary. `tied` holds pairs (input net, value); all other
// inputs are unknown. This is the oracle behind find_static_gates, the
// timing analyzer's active cone and the compiled simulator's cone pruning.
std::vector<std::uint8_t>
propagate_constants(const netlist& nl,
                    const std::vector<std::pair<net_id, bool>>& tied);

// Constant propagation: returns a mask (one entry per gate) that is true for
// gates whose output is fixed given that the listed inputs are tied to
// constants. Gates marked static cannot toggle; the timing analyzer excludes
// them from the active cone. `tied` holds pairs (input net, value); all other
// inputs are unknown.
std::vector<bool>
find_static_gates(const netlist& nl,
                  const std::vector<std::pair<net_id, bool>>& tied);

} // namespace dvafs
