// Levelized two-valued logic simulator with switching-activity accounting.
//
// Because gates are stored in topological order, one linear pass evaluates
// the whole netlist. Between consecutive input vectors, every gate whose
// output changes increments a toggle counter; weighted by the per-gate-kind
// switched capacitance from the technology model this yields the dynamic
// energy estimate  E = sum_g toggles(g) * C(g) * V^2  used throughout the
// paper's analysis.

#pragma once

#include "circuit/netlist.h"

#include <cstdint>
#include <vector>

namespace dvafs {

struct tech_model; // circuit/tech.h

class logic_sim {
public:
    explicit logic_sim(const netlist& nl);

    // Sets all primary inputs (order = netlist::inputs()) and evaluates.
    // The first call establishes the baseline; subsequent calls accumulate
    // toggle counts.
    void apply(const std::vector<bool>& input_values);

    // Applies inputs packed into a word per bus (helper for tests).
    void apply_packed(std::uint64_t bits);

    bool value(net_id id) const { return values_.at(id) != 0; }

    // Reads a multi-bit bus given its nets, LSB first.
    std::uint64_t read_bus(const std::vector<net_id>& nets) const;

    // -- activity statistics ------------------------------------------------
    std::uint64_t toggles(net_id id) const { return toggles_.at(id); }
    std::uint64_t total_toggles() const noexcept;
    // Toggles weighted by per-gate switched capacitance [fF].
    double switched_capacitance_ff(const tech_model& tech) const;
    // Number of input vectors applied since the last reset (first vector
    // initializes state and is not counted as a transition).
    std::uint64_t transitions() const noexcept { return transitions_; }

    void reset_stats();

private:
    void evaluate();

    const netlist& nl_;
    std::vector<std::uint8_t> values_;
    std::vector<std::uint8_t> prev_;
    std::vector<std::uint64_t> toggles_;
    std::uint64_t transitions_ = 0;
    bool initialized_ = false;
};

// Constant propagation: returns a mask (one entry per gate) that is true for
// gates whose output is fixed given that the listed inputs are tied to
// constants. Gates marked static cannot toggle; the timing analyzer excludes
// them from the active cone. `tied` holds pairs (input net, value); all other
// inputs are unknown.
std::vector<bool>
find_static_gates(const netlist& nl,
                  const std::vector<std::pair<net_id, bool>>& tied);

} // namespace dvafs
