// Gate-level netlist representation.
//
// A netlist is a DAG of single-output gates. Each gate drives exactly one
// net, identified by the gate's index, so "net id" and "gate id" coincide.
// Gates must be created after their fanins (construction order is a valid
// topological order), which lets the simulator and the timing analyzer run
// simple linear passes.

#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

namespace dvafs {

using net_id = std::uint32_t;
inline constexpr net_id no_net = 0xffffffffU;

enum class gate_kind : std::uint8_t {
    input,    // primary input (value set externally)
    constant, // fixed 0/1 (aux holds the value)
    buf,      // a
    not_g,    // !a
    and_g,    // a & b
    or_g,     // a | b
    xor_g,    // a ^ b
    nand_g,   // !(a & b)
    nor_g,    // !(a | b)
    xnor_g,   // !(a ^ b)
    and3_g,   // a & b & c
    or3_g,    // a | b | c
    mux_g,    // s ? b : a   (fanins: a, b, s)
    maj_g,    // majority(a, b, c) -- full-adder carry
};

const char* to_string(gate_kind k) noexcept;
int fanin_count(gate_kind k) noexcept;

struct gate {
    gate_kind kind = gate_kind::constant;
    std::uint8_t aux = 0; // constant value for gate_kind::constant
    net_id in0 = no_net;
    net_id in1 = no_net;
    net_id in2 = no_net;
};

class netlist {
public:
    // -- construction -------------------------------------------------------
    net_id add_input(const std::string& name);
    net_id add_const(bool value);
    net_id add_gate(gate_kind kind, net_id a, net_id b = no_net,
                    net_id c = no_net);

    // Convenience wrappers used heavily by the cell builders.
    net_id not_g(net_id a) { return add_gate(gate_kind::not_g, a); }
    net_id buf(net_id a) { return add_gate(gate_kind::buf, a); }
    net_id and_g(net_id a, net_id b);
    net_id or_g(net_id a, net_id b);
    net_id xor_g(net_id a, net_id b);
    net_id nand_g(net_id a, net_id b)
    {
        return add_gate(gate_kind::nand_g, a, b);
    }
    net_id nor_g(net_id a, net_id b)
    {
        return add_gate(gate_kind::nor_g, a, b);
    }
    net_id xnor_g(net_id a, net_id b)
    {
        return add_gate(gate_kind::xnor_g, a, b);
    }
    net_id and3_g(net_id a, net_id b, net_id c);
    net_id or3_g(net_id a, net_id b, net_id c);
    net_id mux_g(net_id a, net_id b, net_id sel);
    net_id maj_g(net_id a, net_id b, net_id c);

    // Registers a named output (for documentation / lookups in tests).
    void mark_output(const std::string& name, net_id id);

    // -- inspection ---------------------------------------------------------
    std::size_t size() const noexcept { return gates_.size(); }
    const gate& at(net_id id) const { return gates_.at(id); }
    const std::vector<gate>& gates() const noexcept { return gates_; }

    const std::vector<net_id>& inputs() const noexcept { return inputs_; }
    net_id input(const std::string& name) const;
    // Reverse lookup for diagnostics: the name `id` was registered under,
    // or "" for unnamed inputs and non-input nets.
    std::string input_name(net_id id) const;
    net_id output(const std::string& name) const;
    const std::unordered_map<std::string, net_id>& outputs() const noexcept
    {
        return outputs_;
    }

    // Number of gates excluding inputs/constants/buffers -- the "cell count"
    // used for area/overhead reporting.
    std::size_t logic_gate_count() const noexcept;

    // Constants are shared: repeated add_const(v) returns the same net.
    net_id const0() const noexcept { return const0_; }
    net_id const1() const noexcept { return const1_; }

private:
    void check_fanin(net_id id) const;

    std::vector<gate> gates_;
    std::vector<net_id> inputs_;
    std::unordered_map<std::string, net_id> input_names_;
    std::unordered_map<std::string, net_id> outputs_;
    net_id const0_ = no_net;
    net_id const1_ = no_net;
};

} // namespace dvafs
