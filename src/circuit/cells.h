// Arithmetic building-block builders on top of the netlist: half/full
// adders, ripple and Kogge-Stone carry-propagate adders, column compressors
// for Wallace-style reduction, and vector gating/mux helpers.
//
// All builders append gates to the caller's netlist and return the nets that
// carry the results (LSB first for buses).

#pragma once

#include "circuit/netlist.h"

#include <vector>

namespace dvafs {

// A bus is a vector of nets, LSB first.
using bus = std::vector<net_id>;

struct adder_bit {
    net_id sum = no_net;
    net_id carry = no_net;
};

// sum = a ^ b, carry = a & b
adder_bit build_half_adder(netlist& nl, net_id a, net_id b);

// sum = a ^ b ^ cin, carry = maj(a, b, cin)
adder_bit build_full_adder(netlist& nl, net_id a, net_id b, net_id cin);

// Ripple-carry adder; result has max(|a|,|b|)+1 bits unless `drop_carry`.
bus build_ripple_adder(netlist& nl, const bus& a, const bus& b,
                       net_id cin = no_net, bool drop_carry = false);

// Kogge-Stone parallel-prefix adder (logarithmic depth). Buses must be the
// same width; result is width+1 bits unless `drop_carry`.
bus build_kogge_stone_adder(netlist& nl, const bus& a, const bus& b,
                            bool drop_carry = false);

// Segmented ripple adder with carry-kill controls: `kill_before[i]` (a net,
// typically a mode signal) forces the carry into bit i to zero when high.
// This is how subword modes cut carry propagation at word boundaries.
bus build_segmented_adder(netlist& nl, const bus& a, const bus& b,
                          const std::vector<std::pair<int, net_id>>& kills,
                          bool drop_carry = false);

// Bitwise AND of every bus bit with `enable` (input gating for DAS).
bus build_gated_bus(netlist& nl, const bus& b, net_id enable);

// 2:1 mux across buses (selects `when_1` if sel).
bus build_mux_bus(netlist& nl, const bus& when_0, const bus& when_1,
                  net_id sel);

// Sign-extends a bus to `width` by replicating the MSB net (pure wiring).
bus extend_signed(const bus& b, int width);
// Zero-extends using the netlist's constant-0.
bus extend_unsigned(netlist& nl, const bus& b, int width);

// --- Wallace-style column compression --------------------------------------
//
// `columns[c]` holds the nets with arithmetic weight 2^c. Compression applies
// full adders (3:2) and half adders (2:2) column by column until every column
// has at most two entries; the two remaining rows are returned for a final
// carry-propagate addition.
//
// `carry_kill[c]`, when present and valid, gates every carry propagating from
// column c-1 into column c (subword boundary cut).
struct compressed_rows {
    bus row0;
    bus row1;
    std::size_t full_adders = 0;
    std::size_t half_adders = 0;
};

compressed_rows
build_wallace_compressor(netlist& nl, std::vector<std::vector<net_id>> columns,
                         const std::vector<net_id>& carry_kill = {});

// Carry-select adder built from Kogge-Stone blocks: each block is computed
// for carry-in 0 and 1, then muxed by the incoming block carry. `kills`
// gates the inter-block carry entering the given bit position (which must be
// a block boundary) -- the fast CPA used at subword boundaries, where a
// ripple chain would misrepresent the critical path.
bus build_carry_select_adder(netlist& nl, const bus& a, const bus& b,
                             int block_bits,
                             const std::vector<std::pair<int, net_id>>& kills
                             = {},
                             bool drop_carry = true);

// Convenience: full Wallace reduction + CPA with optional carry kills at
// given bit positions (net per position). With no kills the CPA is a plain
// Kogge-Stone; with kills it is a carry-select adder segmented at 8-bit
// blocks so subword cuts land on block boundaries.
bus build_wallace_sum(netlist& nl, std::vector<std::vector<net_id>> columns,
                      int result_width,
                      const std::vector<std::pair<int, net_id>>& kills = {});

} // namespace dvafs
