#include "circuit/compiled_sim.h"

#include "analysis/netlist_verifier.h"
#include "analysis/schedule_verifier.h"
#include "circuit/gate_kinds.h"
#include "circuit/logic_sim.h"
#include "circuit/tech.h"
#include "util/disk_store.h"
#include "util/serial.h"
#include "vec/vec.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <stdexcept>

namespace dvafs {

// -- verify-on-compile flag ---------------------------------------------------

namespace {

// -1: unset, consult DVAFS_VERIFY_COMPILE on first use; 0/1: explicit.
std::atomic<int> g_verify_on_compile{-1};

bool env_verify_on_compile() noexcept
{
    const char* e = std::getenv("DVAFS_VERIFY_COMPILE");
    if (e == nullptr) {
        return false;
    }
    const std::string v(e);
    return v == "1" || v == "on" || v == "true" || v == "yes";
}

} // namespace

void set_verify_on_compile(bool on) noexcept
{
    g_verify_on_compile.store(on ? 1 : 0, std::memory_order_relaxed);
}

bool verify_on_compile() noexcept
{
    int s = g_verify_on_compile.load(std::memory_order_relaxed);
    if (s < 0) {
        // Benign race: the environment is stable, so concurrent first
        // readers all derive the same value.
        s = env_verify_on_compile() ? 1 : 0;
        g_verify_on_compile.store(s, std::memory_order_relaxed);
    }
    return s == 1;
}

// -- compilation --------------------------------------------------------------

compiled_schedule
compile_netlist(const netlist& nl,
                const std::vector<std::pair<net_id, bool>>& tied)
{
    const auto& gates = nl.gates();
    const auto& ins = nl.inputs();

    compiled_schedule s;
    s.net_count = nl.size();
    s.input_count = ins.size();

    std::vector<std::int8_t> tie(s.net_count, -1);
    for (const auto& [id, value] : tied) {
        if (nl.at(id).kind != gate_kind::input) {
            throw std::invalid_argument(
                "compile_netlist: tied net is not a primary input");
        }
        tie[id] = value ? 1 : 0;
    }

    // Three-valued constant propagation: the single folding oracle shared
    // with find_static_gates and the timing analyzer's active cone.
    const std::vector<std::uint8_t> val = propagate_constants(nl, tied);

    // Levelize the surviving gates (construction order is topological, so
    // one forward pass suffices; folded fanins sit at level 0), then sort
    // by (level, kind, id): within a level gates are independent, so
    // kind-grouping is free, and processing runs in this order keeps every
    // fanin evaluated before its reader even when same-kind runs merge
    // across level boundaries.
    std::vector<std::uint32_t> level(s.net_count, 0);
    std::vector<net_id> order;
    for (std::size_t i = 0; i < s.net_count; ++i) {
        const gate& g = gates[i];
        if (g.kind == gate_kind::input || g.kind == gate_kind::constant
            || val[i] != ternary_x) {
            continue;
        }
        const int arity = gate_kind_arity(g.kind);
        std::uint32_t lv = level[g.in0];
        if (arity >= 2) {
            lv = std::max(lv, level[g.in1]);
        }
        if (arity >= 3) {
            lv = std::max(lv, level[g.in2]);
        }
        level[i] = lv + 1;
        order.push_back(static_cast<net_id>(i));
    }
    std::sort(order.begin(), order.end(), [&](net_id a, net_id b) {
        if (level[a] != level[b]) {
            return level[a] < level[b];
        }
        if (gates[a].kind != gates[b].kind) {
            return gates[a].kind < gates[b].kind;
        }
        return a < b;
    });

    // Dense renumbering, hot to cold: scheduled gates in schedule order
    // (a gate's dense id == its schedule position), then live inputs,
    // then every folded net.
    constexpr net_id unassigned = no_net;
    s.dense_of.assign(s.net_count, unassigned);
    s.kinds.resize(s.net_count);
    net_id next = 0;
    const auto assign = [&](net_id orig) {
        s.dense_of[orig] = next;
        s.kinds[next] = gates[orig].kind;
        ++next;
    };
    for (const net_id id : order) {
        assign(id);
    }
    for (std::size_t pos = 0; pos < ins.size(); ++pos) {
        const net_id net = ins[pos];
        if (tie[net] < 0) {
            assign(net);
            s.live_inputs.push_back({s.dense_of[net],
                                     static_cast<std::uint32_t>(pos)});
        } else {
            s.tied_checks.push_back({static_cast<std::uint32_t>(pos),
                                     tie[net] != 0, net,
                                     nl.input_name(net)});
        }
    }
    for (std::size_t i = 0; i < s.net_count; ++i) {
        if (val[i] == ternary_x) {
            continue;
        }
        assign(static_cast<net_id>(i));
        s.const_dense.push_back(s.dense_of[i]);
        s.const_vals.push_back(val[i]);
        const gate_kind k = gates[i].kind;
        if (k != gate_kind::input && k != gate_kind::constant) {
            ++s.pruned_gates;
        }
    }

    s.in0.reserve(order.size());
    s.in1.reserve(order.size());
    s.in2.reserve(order.size());
    for (const net_id id : order) {
        const gate& g = gates[id];
        const int arity = gate_kind_arity(g.kind);
        if (s.runs.empty() || s.runs.back().kind != g.kind) {
            const auto at = static_cast<std::uint32_t>(s.in0.size());
            s.runs.push_back({g.kind, at, at});
        }
        s.in0.push_back(s.dense_of[g.in0]);
        s.in1.push_back(arity >= 2 ? s.dense_of[g.in1]
                                   : 0); // absent fanin: slot 0,
        s.in2.push_back(arity >= 3 ? s.dense_of[g.in2]
                                   : 0); // loaded but never used
        s.runs.back().end = static_cast<std::uint32_t>(s.in0.size());
    }

    // Verify-on-compile: prove the source netlist well-formed and the
    // schedule just built structurally sound against it before anything
    // caches or executes it.
    if (verify_on_compile()) {
        lint_report combined;
        combined.subject = "verify-on-compile";
        combined.merge(verify_netlist(nl, "netlist"));
        combined.merge(verify_schedule(nl, s, tied, "schedule"));
        if (!combined.ok()) {
            throw verification_error(std::move(combined));
        }
    }
    return s;
}

// -- executor -----------------------------------------------------------------

template <int W>
compiled_sim<W>::compiled_sim(
    std::shared_ptr<const compiled_schedule> schedule)
    : sched_(std::move(schedule)),
      values_(sched_->net_count, wide_word<W>::zero()),
      last_(sched_->net_count, 0),
      toggles_(sched_->net_count, 0)
{
    // Folded nets get their constant once; no kernel ever writes them and
    // the toggle accounting skips them (a constant never transitions).
    for (std::size_t i = 0; i < sched_->const_dense.size(); ++i) {
        const net_id slot = sched_->const_dense[i];
        const bool v = sched_->const_vals[i] != 0;
        values_[slot] = v ? wide_word<W>::ones() : wide_word<W>::zero();
        last_[slot] = v ? 1 : 0;
    }
}

template <int W>
void compiled_sim<W>::dispatch_run(const compiled_run& run,
                                   const wide_word<W>& toggle_mask,
                                   int last_word, int last_bit)
{
    if (run.kind == gate_kind::input || run.kind == gate_kind::constant) {
        throw std::logic_error("compiled_sim: unschedulable kind in run");
    }
    // One indirect call per kind-homogeneous run into the dispatched
    // host-SIMD backend (src/vec/): the backend folds the kind switch at
    // compile time and fuses the transition popcount into the same pass,
    // exactly as the pre-vec per-kind templates did -- but compiled once
    // per ISA with real vector flags instead of hoping the baseline
    // build auto-vectorizes. Dense renumbering makes the output slot the
    // loop index, so value/toggle/last writes stream sequentially.
    static_assert(sizeof(wide_word<W>) == sizeof(std::uint64_t) * W);
    vec::gate_run_args args;
    args.kind = static_cast<int>(run.kind);
    args.in0 = sched_->in0.data();
    args.in1 = sched_->in1.data();
    args.in2 = sched_->in2.data();
    args.begin = run.begin;
    args.end = run.end;
    args.values = values_.data()->w;
    args.toggles = toggles_.data();
    args.last = last_.data();
    args.toggle_mask = toggle_mask.w;
    args.last_word = last_word;
    args.last_bit = last_bit;
    const vec::kernel_table& kt = vec::active();
    if constexpr (W == 1) {
        kt.exec_gates_w1(args);
    } else if constexpr (W == 4) {
        kt.exec_gates_w4(args);
    } else {
        static_assert(W == 8, "compiled_sim: no vec kernel for this W");
        kt.exec_gates_w8(args);
    }
}

template <int W>
void compiled_sim<W>::apply(const std::vector<std::uint64_t>& input_words,
                            int count)
{
    const compiled_schedule& s = *sched_;
    if (input_words.size() != s.input_count * static_cast<std::size_t>(W)) {
        throw std::invalid_argument(
            "compiled_sim: input word count mismatch");
    }
    if (count < 1 || count > lane_capacity) {
        throw std::invalid_argument("compiled_sim: count out of range");
    }

    const wide_word<W> batch_mask = wide_word<W>::first_lanes(count);
    wide_word<W> toggle_mask = batch_mask;
    if (!initialized_) {
        toggle_mask.w[0] &= ~1ULL; // first vector ever: no transition
    }
    const int last_word = (count - 1) >> 6;
    const int last_bit = (count - 1) & 63;

    // Mode-specialized schedules assume the tied inputs really are
    // constant; a contradicting stimulus would silently undercount
    // toggles, so reject it -- naming the offending input the same way
    // the schedule verifier's diagnostics do.
    for (const auto& tc : s.tied_checks) {
        const std::uint64_t want = tc.value ? ~0ULL : 0ULL;
        const std::uint64_t* words =
            input_words.data() + static_cast<std::size_t>(tc.pos) * W;
        for (int k = 0; k < W; ++k) {
            const std::uint64_t bad = (words[k] ^ want) & batch_mask.w[k];
            if (bad != 0) {
                const int lane = k * 64 + std::countr_zero(bad);
                std::ostringstream m;
                m << "compiled_sim: stimulus contradicts tied input ";
                if (!tc.name.empty()) {
                    m << "'" << tc.name << "' ";
                }
                m << "(net " << tc.net << ", input #" << tc.pos
                  << "): tied to " << (tc.value ? 1 : 0)
                  << " by this mode-specialized schedule but driven "
                  << (tc.value ? 0 : 1) << " in lane " << lane;
                throw std::invalid_argument(m.str());
            }
        }
    }

    const vec::kernel_table& kt = vec::active();
    for (const compiled_schedule::live_input& li : s.live_inputs) {
        wide_word<W> v{};
        std::memcpy(v.w,
                    input_words.data()
                        + static_cast<std::size_t>(li.pos) * W,
                    sizeof(v.w));
        values_[li.dense] = v;
        toggles_[li.dense] +=
            kt.shift_transitions(v.w, toggle_mask.w, W, last_[li.dense]);
        last_[li.dense] = static_cast<std::uint8_t>(
            (v.w[last_word] >> last_bit) & 1ULL);
    }

    for (const compiled_run& run : s.runs) {
        dispatch_run(run, toggle_mask, last_word, last_bit);
    }

    transitions_ +=
        static_cast<std::uint64_t>(count) - (initialized_ ? 0U : 1U);
    initialized_ = true;
}

template <int W>
bool compiled_sim<W>::value(net_id id, int lane) const
{
    if (lane < 0 || lane >= lane_capacity) {
        throw std::invalid_argument("compiled_sim: lane out of range");
    }
    return values_[sched_->dense_of.at(id)].bit(lane);
}

template <int W>
std::uint64_t compiled_sim<W>::word(net_id id, int block) const
{
    if (block < 0 || block >= W) {
        throw std::invalid_argument("compiled_sim: block out of range");
    }
    return values_[sched_->dense_of.at(id)].w[block];
}

template <int W>
std::uint64_t compiled_sim<W>::read_bus(const std::vector<net_id>& nets,
                                        int lane) const
{
    if (nets.size() > 64) {
        throw std::invalid_argument(
            "compiled_sim: bus wider than 64 nets cannot be packed");
    }
    if (lane < 0 || lane >= lane_capacity) {
        throw std::invalid_argument("compiled_sim: lane out of range");
    }
    std::uint64_t out = 0;
    for (std::size_t i = 0; i < nets.size(); ++i) {
        out |= static_cast<std::uint64_t>(
                   values_[sched_->dense_of.at(nets[i])].bit(lane))
               << i;
    }
    return out;
}

template <int W>
std::uint64_t compiled_sim<W>::total_toggles() const noexcept
{
    std::uint64_t total = 0;
    for (const std::uint64_t t : toggles_) {
        total += t;
    }
    return total;
}

template <int W>
double compiled_sim<W>::switched_capacitance_ff(const tech_model& tech) const
{
    // Accumulate in ORIGINAL net order: double addition is not
    // associative, and this sum must equal logic_sim/logic_sim64's to the
    // last bit (the bench and the differential suite compare exactly).
    double total = 0.0;
    for (std::size_t id = 0; id < sched_->dense_of.size(); ++id) {
        const net_id slot = sched_->dense_of[id];
        if (toggles_[slot] == 0) {
            continue;
        }
        total += static_cast<double>(toggles_[slot])
                 * tech.gate_cap_ff(sched_->kinds[slot]);
    }
    return total;
}

template <int W>
void compiled_sim<W>::reset_stats()
{
    std::fill(toggles_.begin(), toggles_.end(), 0);
    transitions_ = 0;
}

template <int W>
sim_activity_state compiled_sim<W>::save_activity() const
{
    sim_activity_state st;
    st.last = last_;
    st.toggles = toggles_;
    st.transitions = transitions_;
    st.initialized = initialized_;
    return st;
}

template <int W>
void compiled_sim<W>::load_activity(const sim_activity_state& st)
{
    if (st.last.size() != last_.size()
        || st.toggles.size() != toggles_.size()) {
        throw std::invalid_argument(
            "compiled_sim: activity state does not fit this schedule");
    }
    last_ = st.last;
    toggles_ = st.toggles;
    transitions_ = st.transitions;
    initialized_ = st.initialized;
}

template <int W>
void compiled_sim<W>::adopt_carry(const compiled_sim& src)
{
    if (sched_.get() != src.sched_.get()) {
        throw std::invalid_argument(
            "compiled_sim: adopt_carry across different schedules");
    }
    last_ = src.last_;
    initialized_ = src.initialized_;
}

template <int W>
void compiled_sim<W>::merge_stats(const compiled_sim& src)
{
    if (sched_.get() != src.sched_.get()) {
        throw std::invalid_argument(
            "compiled_sim: merge_stats across different schedules");
    }
    for (std::size_t i = 0; i < toggles_.size(); ++i) {
        toggles_[i] += src.toggles_[i];
    }
    transitions_ += src.transitions_;
}

template class compiled_sim<1>;
template class compiled_sim<4>;
template class compiled_sim<8>;

double schedule_switched_capacitance_ff(const compiled_schedule& s,
                                        const std::vector<std::uint64_t>&
                                            toggles,
                                        const tech_model& tech)
{
    if (toggles.size() != s.net_count) {
        throw std::invalid_argument(
            "schedule_switched_capacitance_ff: toggle array size mismatch");
    }
    // Accumulate in ORIGINAL net order: double addition is not
    // associative, and this sum must equal logic_sim/logic_sim64's to the
    // last bit (the bench and the differential suite compare exactly).
    double total = 0.0;
    for (std::size_t id = 0; id < s.dense_of.size(); ++id) {
        const net_id slot = s.dense_of[id];
        if (toggles[slot] == 0) {
            continue;
        }
        total += static_cast<double>(toggles[slot])
                 * tech.gate_cap_ff(s.kinds[slot]);
    }
    return total;
}

// -- executor pool ------------------------------------------------------------

template <int W>
compiled_sim_pool<W>& compiled_sim_pool<W>::global()
{
    static compiled_sim_pool pool;
    return pool;
}

template <int W>
typename compiled_sim_pool<W>::lease
compiled_sim_pool<W>::acquire(std::shared_ptr<const compiled_schedule> sched)
{
    {
        const std::lock_guard<std::mutex> lock(mu_);
        const auto it = idle_.find(sched.get());
        if (it != idle_.end() && !it->second.empty()) {
            std::unique_ptr<compiled_sim<W>> sim =
                std::move(it->second.back());
            it->second.pop_back();
            return lease(this, std::move(sim));
        }
    }
    return lease(this,
                 std::make_unique<compiled_sim<W>>(std::move(sched)));
}

template <int W>
std::size_t compiled_sim_pool<W>::idle_count(const compiled_schedule& sched)
{
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = idle_.find(&sched);
    return it != idle_.end() ? it->second.size() : 0;
}

template <int W>
void compiled_sim_pool<W>::give_back(std::unique_ptr<compiled_sim<W>> sim)
{
    const std::lock_guard<std::mutex> lock(mu_);
    idle_[&sim->schedule()].push_back(std::move(sim));
}

template <int W>
void compiled_sim_pool<W>::lease::release() noexcept
{
    if (pool_ != nullptr && sim_ != nullptr) {
        // give_back only locks and moves; allocation failure aside it
        // cannot throw, and losing an executor on that path is benign.
        try {
            pool_->give_back(std::move(sim_));
        } catch (...) {
        }
    }
    pool_ = nullptr;
    sim_.reset();
}

template class compiled_sim_pool<1>;
template class compiled_sim_pool<4>;
template class compiled_sim_pool<8>;

// -- schedule persistence -----------------------------------------------------

namespace {

// Payload format version for "schedule" blobs; bump on any layout change
// (old entries then silently recompile).
constexpr std::uint32_t schedule_blob_version = 1;

constexpr std::uint8_t max_gate_kind =
    static_cast<std::uint8_t>(gate_kind::maj_g);

} // namespace

std::vector<std::uint8_t> serialize_schedule(const compiled_schedule& s)
{
    byte_writer w;
    w.u32(schedule_blob_version);
    w.u64(s.net_count);
    w.u64(s.input_count);
    w.vec_u32(s.dense_of);
    w.u64(s.kinds.size());
    for (const gate_kind k : s.kinds) {
        w.u8(static_cast<std::uint8_t>(k));
    }
    w.u64(s.live_inputs.size());
    for (const compiled_schedule::live_input& li : s.live_inputs) {
        w.u32(li.dense);
        w.u32(li.pos);
    }
    w.u64(s.runs.size());
    for (const compiled_run& r : s.runs) {
        w.u8(static_cast<std::uint8_t>(r.kind));
        w.u32(r.begin);
        w.u32(r.end);
    }
    w.vec_u32(s.in0);
    w.vec_u32(s.in1);
    w.vec_u32(s.in2);
    w.u64(s.tied_checks.size());
    for (const compiled_schedule::tied_check& tc : s.tied_checks) {
        w.u32(tc.pos);
        w.u8(tc.value ? 1 : 0);
        w.u32(tc.net);
        w.str(tc.name);
    }
    w.vec_u32(s.const_dense);
    w.bytes_u8(s.const_vals);
    w.u64(s.pruned_gates);
    return w.take();
}

std::optional<compiled_schedule>
deserialize_schedule(const std::vector<std::uint8_t>& bytes)
{
    compiled_schedule s;
    try {
        byte_reader r(bytes);
        if (r.u32() != schedule_blob_version) {
            return std::nullopt;
        }
        s.net_count = r.u64();
        s.input_count = r.u64();
        s.dense_of = r.vec_u32();
        const std::size_t n_kinds = r.u64();
        if (n_kinds > r.remaining()) {
            return std::nullopt;
        }
        s.kinds.resize(n_kinds);
        for (std::size_t i = 0; i < n_kinds; ++i) {
            const std::uint8_t k = r.u8();
            if (k > max_gate_kind) {
                return std::nullopt;
            }
            s.kinds[i] = static_cast<gate_kind>(k);
        }
        const std::size_t n_live = r.u64();
        if (n_live > r.remaining() / 8) {
            return std::nullopt;
        }
        s.live_inputs.resize(n_live);
        for (auto& li : s.live_inputs) {
            li.dense = r.u32();
            li.pos = r.u32();
        }
        const std::size_t n_runs = r.u64();
        if (n_runs > r.remaining() / 9) {
            return std::nullopt;
        }
        s.runs.resize(n_runs);
        for (compiled_run& run : s.runs) {
            const std::uint8_t k = r.u8();
            if (k > max_gate_kind) {
                return std::nullopt;
            }
            run.kind = static_cast<gate_kind>(k);
            run.begin = r.u32();
            run.end = r.u32();
        }
        s.in0 = r.vec_u32();
        s.in1 = r.vec_u32();
        s.in2 = r.vec_u32();
        const std::size_t n_tied = r.u64();
        if (n_tied > r.remaining() / 9) {
            return std::nullopt;
        }
        s.tied_checks.resize(n_tied);
        for (auto& tc : s.tied_checks) {
            tc.pos = r.u32();
            tc.value = r.u8() != 0;
            tc.net = r.u32();
            tc.name = r.str();
        }
        s.const_dense = r.vec_u32();
        s.const_vals = r.bytes_u8();
        s.pruned_gates = r.u64();
        if (!r.done()) {
            return std::nullopt;
        }
    } catch (const serial_error&) {
        return std::nullopt;
    }

    // Structural consistency: executing an inconsistent schedule would
    // index out of bounds, so reject anything the executor's assumptions
    // do not hold for (the deep soundness proof lives in the schedule
    // verifier; these checks bound every array access).
    const std::size_t n = s.net_count;
    const std::size_t sg = s.in0.size();
    if (s.dense_of.size() != n || s.kinds.size() != n
        || s.in1.size() != sg || s.in2.size() != sg || sg > n) {
        return std::nullopt;
    }
    for (const net_id d : s.dense_of) {
        if (d >= n) {
            return std::nullopt;
        }
    }
    for (std::size_t i = 0; i < sg; ++i) {
        if (s.in0[i] >= n || s.in1[i] >= n || s.in2[i] >= n) {
            return std::nullopt;
        }
    }
    std::uint32_t at = 0;
    for (const compiled_run& run : s.runs) {
        if (run.begin != at || run.end < run.begin || run.end > sg
            || run.kind == gate_kind::input
            || run.kind == gate_kind::constant) {
            return std::nullopt;
        }
        at = run.end;
    }
    if (at != sg) {
        return std::nullopt;
    }
    for (const auto& li : s.live_inputs) {
        if (li.dense >= n || li.pos >= s.input_count) {
            return std::nullopt;
        }
    }
    for (const auto& tc : s.tied_checks) {
        if (tc.pos >= s.input_count) {
            return std::nullopt;
        }
    }
    if (s.const_vals.size() != s.const_dense.size()) {
        return std::nullopt;
    }
    for (const net_id d : s.const_dense) {
        if (d >= n) {
            return std::nullopt;
        }
    }
    for (const std::uint8_t v : s.const_vals) {
        if (v > 1) {
            return std::nullopt;
        }
    }
    return s;
}

// -- schedule cache -----------------------------------------------------------

compiled_netlist_cache& compiled_netlist_cache::global()
{
    static compiled_netlist_cache cache;
    return cache;
}

namespace {

// FNV-1a over the structural content. Keying on content rather than
// address makes the cache safe against address reuse by short-lived
// netlists and lets identical structures share one schedule.
std::uint64_t structural_hash(const netlist& nl)
{
    std::uint64_t h = 1469598103934665603ULL;
    const auto mix = [&h](std::uint64_t x) {
        h ^= x;
        h *= 1099511628211ULL;
    };
    for (const gate& g : nl.gates()) {
        mix(static_cast<std::uint64_t>(g.kind)
            | (static_cast<std::uint64_t>(g.aux) << 8));
        mix(g.in0);
        mix(g.in1);
        mix(g.in2);
    }
    for (const net_id id : nl.inputs()) {
        mix(id);
    }
    return h;
}

} // namespace

std::string compiled_netlist_cache::key_for(
    const netlist& nl, const std::vector<std::pair<net_id, bool>>& tied)
{
    std::ostringstream key;
    key << std::hex << structural_hash(nl) << std::dec << "|g" << nl.size()
        << "|i" << nl.inputs().size() << "|t";
    for (const auto& [id, value] : tied) {
        key << ":" << id << (value ? "+" : "-");
    }
    return key.str();
}

std::shared_ptr<const compiled_schedule>
compiled_netlist_cache::get(const netlist& nl,
                            const std::vector<std::pair<net_id, bool>>& tied)
{
    const std::string key = key_for(nl, tied);

    const std::lock_guard<std::mutex> lock(mu_);
    auto& slot = entries_[key];
    if (slot) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        return slot;
    }

    // Memory miss: try the on-disk store before compiling. The key is
    // content-derived (structural hash + tie list), so a blob from any
    // process with the same netlist is the same schedule; a blob that
    // fails deserialization's consistency checks -- or, under
    // verify-on-compile, the full schedule verifier -- recompiles.
    const disk_store store = disk_store::from_env();
    if (store.enabled()) {
        if (const auto blob = store.load("schedule", key)) {
            if (auto sched = deserialize_schedule(*blob)) {
                bool sound = true;
                if (verify_on_compile()) {
                    lint_report rep =
                        verify_schedule(nl, *sched, tied, "schedule(disk)");
                    sound = rep.ok();
                }
                if (sound) {
                    disk_hits_.fetch_add(1, std::memory_order_relaxed);
                    slot = std::make_shared<const compiled_schedule>(
                        std::move(*sched));
                    return slot;
                }
            }
        }
    }

    compiles_.fetch_add(1, std::memory_order_relaxed);
    slot = std::make_shared<const compiled_schedule>(
        compile_netlist(nl, tied));
    if (store.enabled()) {
        store.store("schedule", key, serialize_schedule(*slot));
    }
    return slot;
}

} // namespace dvafs
