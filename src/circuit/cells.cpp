#include "circuit/cells.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace dvafs {

adder_bit build_half_adder(netlist& nl, net_id a, net_id b)
{
    adder_bit r;
    r.sum = nl.xor_g(a, b);
    r.carry = nl.and_g(a, b);
    return r;
}

adder_bit build_full_adder(netlist& nl, net_id a, net_id b, net_id cin)
{
    adder_bit r;
    r.sum = nl.xor_g(nl.xor_g(a, b), cin);
    r.carry = nl.maj_g(a, b, cin);
    return r;
}

bus build_ripple_adder(netlist& nl, const bus& a, const bus& b, net_id cin,
                       bool drop_carry)
{
    const std::size_t width = std::max(a.size(), b.size());
    const net_id zero = nl.add_const(false);
    bus out;
    out.reserve(width + 1);
    net_id carry = (cin == no_net) ? zero : cin;
    for (std::size_t i = 0; i < width; ++i) {
        const net_id ai = i < a.size() ? a[i] : zero;
        const net_id bi = i < b.size() ? b[i] : zero;
        const adder_bit fa = build_full_adder(nl, ai, bi, carry);
        out.push_back(fa.sum);
        carry = fa.carry;
    }
    if (!drop_carry) {
        out.push_back(carry);
    }
    return out;
}

bus build_kogge_stone_adder(netlist& nl, const bus& a, const bus& b,
                            bool drop_carry)
{
    if (a.size() != b.size()) {
        throw std::invalid_argument("kogge_stone: width mismatch");
    }
    const std::size_t n = a.size();
    if (n == 0) {
        return {};
    }

    // Generate / propagate per bit.
    bus g(n);
    bus p(n);
    for (std::size_t i = 0; i < n; ++i) {
        g[i] = nl.and_g(a[i], b[i]);
        p[i] = nl.xor_g(a[i], b[i]);
    }

    // Prefix combine: (g, p) o (g', p') = (g | p & g', p & p').
    bus gg = g;
    bus pp = p;
    for (std::size_t dist = 1; dist < n; dist <<= 1) {
        bus g2 = gg;
        bus p2 = pp;
        for (std::size_t i = dist; i < n; ++i) {
            g2[i] = nl.or_g(gg[i], nl.and_g(pp[i], gg[i - dist]));
            p2[i] = nl.and_g(pp[i], pp[i - dist]);
        }
        gg = std::move(g2);
        pp = std::move(p2);
    }

    // Carries: c[0] = 0, c[i] = gg[i-1]; sum[i] = p[i] ^ c[i].
    const net_id zero = nl.add_const(false);
    bus out;
    out.reserve(n + 1);
    net_id carry_in = zero;
    for (std::size_t i = 0; i < n; ++i) {
        out.push_back(nl.xor_g(p[i], carry_in));
        carry_in = gg[i];
    }
    if (!drop_carry) {
        out.push_back(carry_in);
    }
    return out;
}

bus build_segmented_adder(netlist& nl, const bus& a, const bus& b,
                          const std::vector<std::pair<int, net_id>>& kills,
                          bool drop_carry)
{
    const std::size_t width = std::max(a.size(), b.size());
    const net_id zero = nl.add_const(false);
    bus out;
    out.reserve(width + 1);
    net_id carry = zero;
    for (std::size_t i = 0; i < width; ++i) {
        for (const auto& [pos, keep] : kills) {
            // `keep` low forces the carry entering bit `pos` to zero.
            if (static_cast<std::size_t>(pos) == i) {
                carry = nl.and_g(carry, keep);
            }
        }
        const net_id ai = i < a.size() ? a[i] : zero;
        const net_id bi = i < b.size() ? b[i] : zero;
        const adder_bit fa = build_full_adder(nl, ai, bi, carry);
        out.push_back(fa.sum);
        carry = fa.carry;
    }
    if (!drop_carry) {
        out.push_back(carry);
    }
    return out;
}

bus build_gated_bus(netlist& nl, const bus& b, net_id enable)
{
    bus out;
    out.reserve(b.size());
    for (const net_id n : b) {
        out.push_back(nl.and_g(n, enable));
    }
    return out;
}

bus build_mux_bus(netlist& nl, const bus& when_0, const bus& when_1,
                  net_id sel)
{
    if (when_0.size() != when_1.size()) {
        throw std::invalid_argument("mux_bus: width mismatch");
    }
    bus out;
    out.reserve(when_0.size());
    for (std::size_t i = 0; i < when_0.size(); ++i) {
        out.push_back(nl.mux_g(when_0[i], when_1[i], sel));
    }
    return out;
}

bus extend_signed(const bus& b, int width)
{
    if (b.empty()) {
        throw std::invalid_argument("extend_signed: empty bus");
    }
    bus out = b;
    while (static_cast<int>(out.size()) < width) {
        out.push_back(b.back());
    }
    return out;
}

bus extend_unsigned(netlist& nl, const bus& b, int width)
{
    bus out = b;
    const net_id zero = nl.add_const(false);
    while (static_cast<int>(out.size()) < width) {
        out.push_back(zero);
    }
    return out;
}

compressed_rows
build_wallace_compressor(netlist& nl, std::vector<std::vector<net_id>> columns,
                         const std::vector<net_id>& carry_kill)
{
    compressed_rows result;
    const net_id zero = nl.add_const(false);

    // Drop constant-zero entries up front; they correspond to hardwired
    // absent partial products and cost nothing in hardware.
    for (auto& col : columns) {
        std::erase(col, zero);
    }

    bool work_left = true;
    while (work_left) {
        work_left = false;
        std::vector<std::vector<net_id>> next(columns.size() + 1);
        for (std::size_t c = 0; c < columns.size(); ++c) {
            auto& col = columns[c];
            std::size_t i = 0;
            const auto push_carry = [&](net_id carry) {
                // A carry from column c lands in column c+1; a kill net on
                // column c+1 gates it off in subword modes.
                if (c + 1 < carry_kill.size()
                    && carry_kill[c + 1] != no_net) {
                    carry = nl.and_g(carry, carry_kill[c + 1]);
                }
                next[c + 1].push_back(carry);
            };
            while (col.size() - i >= 3) {
                const adder_bit fa = build_full_adder(nl, col[i], col[i + 1],
                                                      col[i + 2]);
                ++result.full_adders;
                next[c].push_back(fa.sum);
                push_carry(fa.carry);
                i += 3;
            }
            if (col.size() - i == 2 && col.size() > 2) {
                // Column still too tall overall: use a half adder.
                const adder_bit ha = build_half_adder(nl, col[i], col[i + 1]);
                ++result.half_adders;
                next[c].push_back(ha.sum);
                push_carry(ha.carry);
                i += 2;
            }
            for (; i < col.size(); ++i) {
                next[c].push_back(col[i]);
            }
        }
        // Trim trailing empty columns, then check whether anything is taller
        // than two entries.
        while (!next.empty() && next.back().empty()) {
            next.pop_back();
        }
        for (const auto& col : next) {
            if (col.size() > 2) {
                work_left = true;
                break;
            }
        }
        columns = std::move(next);
    }

    result.row0.assign(columns.size(), zero);
    result.row1.assign(columns.size(), zero);
    for (std::size_t c = 0; c < columns.size(); ++c) {
        if (!columns[c].empty()) {
            result.row0[c] = columns[c][0];
        }
        if (columns[c].size() > 1) {
            result.row1[c] = columns[c][1];
        }
    }
    return result;
}

bus build_carry_select_adder(netlist& nl, const bus& a, const bus& b,
                             int block_bits,
                             const std::vector<std::pair<int, net_id>>& kills,
                             bool drop_carry)
{
    if (a.size() != b.size()) {
        throw std::invalid_argument("carry_select: width mismatch");
    }
    const int n = static_cast<int>(a.size());
    const net_id zero = nl.add_const(false);
    const net_id one = nl.add_const(true);

    const auto keep_at = [&](int pos) -> net_id {
        for (const auto& [p, keep] : kills) {
            if (p == pos) {
                return keep;
            }
        }
        return no_net;
    };

    bus out;
    out.reserve(a.size() + 1);
    net_id carry = zero;
    for (int base = 0; base < n; base += block_bits) {
        const int len = std::min(block_bits, n - base);
        if (const net_id keep = keep_at(base); keep != no_net) {
            carry = nl.and_g(carry, keep);
        }
        const bus ab(a.begin() + base, a.begin() + base + len);
        const bus bb(b.begin() + base, b.begin() + base + len);
        if (base == 0) {
            // First block: carry-in is known zero, one adder suffices.
            bus s = build_kogge_stone_adder(nl, ab, bb);
            carry = s.back();
            s.pop_back();
            out.insert(out.end(), s.begin(), s.end());
            continue;
        }
        // Speculative sums for carry-in 0 and 1, then select.
        bus s0 = build_kogge_stone_adder(nl, ab, bb);
        // carry-in 1: add (bb + 1) via an extra bus of value 1.
        bus one_bus(static_cast<std::size_t>(len), zero);
        one_bus[0] = one;
        bus bb1 = build_ripple_adder(nl, bb, one_bus, no_net,
                                     /*drop_carry=*/false);
        const net_id b_ovf = bb1.back();
        bb1.pop_back();
        bus s1 = build_kogge_stone_adder(nl, ab, bb1);
        const net_id c0 = s0.back();
        const net_id c1 = nl.or_g(s1.back(), b_ovf);
        s0.pop_back();
        s1.pop_back();
        bus sel = build_mux_bus(nl, s0, s1, carry);
        out.insert(out.end(), sel.begin(), sel.end());
        carry = nl.mux_g(c0, c1, carry);
    }
    if (!drop_carry) {
        out.push_back(carry);
    }
    return out;
}

bus build_wallace_sum(netlist& nl, std::vector<std::vector<net_id>> columns,
                      int result_width,
                      const std::vector<std::pair<int, net_id>>& kills)
{
    std::vector<net_id> kill_nets;
    if (!kills.empty()) {
        kill_nets.assign(static_cast<std::size_t>(result_width) + 1, no_net);
        for (const auto& [pos, net] : kills) {
            kill_nets.at(static_cast<std::size_t>(pos)) = net;
        }
    }
    columns.resize(static_cast<std::size_t>(result_width));
    compressed_rows rows =
        build_wallace_compressor(nl, std::move(columns), kill_nets);

    rows.row0.resize(static_cast<std::size_t>(result_width),
                     nl.add_const(false));
    rows.row1.resize(static_cast<std::size_t>(result_width),
                     nl.add_const(false));
    bus sum;
    if (kills.empty()) {
        sum = build_kogge_stone_adder(nl, rows.row0, rows.row1,
                                      /*drop_carry=*/true);
    } else {
        // Block size must divide every kill position so each cut lands on a
        // block boundary of the carry-select adder.
        int block_bits = 0;
        for (const auto& [pos, net] : kills) {
            block_bits = block_bits == 0 ? pos : std::gcd(block_bits, pos);
        }
        if (block_bits <= 0) {
            block_bits = 8;
        }
        sum = build_carry_select_adder(nl, rows.row0, rows.row1, block_bits,
                                       kills, /*drop_carry=*/true);
    }
    sum.resize(static_cast<std::size_t>(result_width), nl.add_const(false));
    return sum;
}

} // namespace dvafs
