#include "circuit/netlist.h"

#include "circuit/gate_kinds.h"

namespace dvafs {

const char* to_string(gate_kind k) noexcept
{
    switch (k) {
    case gate_kind::input: return "input";
    case gate_kind::constant: return "const";
    case gate_kind::buf: return "buf";
    case gate_kind::not_g: return "not";
    case gate_kind::and_g: return "and";
    case gate_kind::or_g: return "or";
    case gate_kind::xor_g: return "xor";
    case gate_kind::nand_g: return "nand";
    case gate_kind::nor_g: return "nor";
    case gate_kind::xnor_g: return "xnor";
    case gate_kind::and3_g: return "and3";
    case gate_kind::or3_g: return "or3";
    case gate_kind::mux_g: return "mux";
    case gate_kind::maj_g: return "maj";
    }
    return "?";
}

int fanin_count(gate_kind k) noexcept
{
    // The arity table lives with the shared truth tables in
    // circuit/gate_kinds.h; this wrapper keeps the historical entry point.
    return gate_kind_arity(k);
}

void netlist::check_fanin(net_id id) const
{
    if (id >= gates_.size()) {
        throw std::out_of_range(
            "netlist: fanin refers to a gate that does not exist yet");
    }
}

net_id netlist::add_input(const std::string& name)
{
    gate g;
    g.kind = gate_kind::input;
    const auto id = static_cast<net_id>(gates_.size());
    gates_.push_back(g);
    inputs_.push_back(id);
    if (!name.empty()) {
        if (!input_names_.emplace(name, id).second) {
            throw std::invalid_argument("netlist: duplicate input " + name);
        }
    }
    return id;
}

net_id netlist::add_const(bool value)
{
    net_id& cache = value ? const1_ : const0_;
    if (cache != no_net) {
        return cache;
    }
    gate g;
    g.kind = gate_kind::constant;
    g.aux = value ? 1 : 0;
    const auto id = static_cast<net_id>(gates_.size());
    gates_.push_back(g);
    cache = id;
    return id;
}

net_id netlist::add_gate(gate_kind kind, net_id a, net_id b, net_id c)
{
    const int n = fanin_count(kind);
    if (n >= 1) {
        check_fanin(a);
    }
    if (n >= 2) {
        check_fanin(b);
    }
    if (n >= 3) {
        check_fanin(c);
    }
    gate g;
    g.kind = kind;
    g.in0 = a;
    g.in1 = b;
    g.in2 = c;
    const auto id = static_cast<net_id>(gates_.size());
    gates_.push_back(g);
    return id;
}

// The 2-input wrappers fold constants eagerly. This mirrors what synthesis
// does with tied-off inputs and keeps mode-gating logic from inflating the
// simulated gate count with gates a tool would never emit.
net_id netlist::and_g(net_id a, net_id b)
{
    if (a == const0_ || b == const0_) {
        return add_const(false);
    }
    if (a == const1_) {
        return b;
    }
    if (b == const1_) {
        return a;
    }
    return add_gate(gate_kind::and_g, a, b);
}

net_id netlist::or_g(net_id a, net_id b)
{
    if (a == const1_ || b == const1_) {
        return add_const(true);
    }
    if (a == const0_) {
        return b;
    }
    if (b == const0_) {
        return a;
    }
    return add_gate(gate_kind::or_g, a, b);
}

net_id netlist::xor_g(net_id a, net_id b)
{
    if (a == const0_) {
        return b;
    }
    if (b == const0_) {
        return a;
    }
    if (a == const1_) {
        return add_gate(gate_kind::not_g, b);
    }
    if (b == const1_) {
        return add_gate(gate_kind::not_g, a);
    }
    return add_gate(gate_kind::xor_g, a, b);
}

net_id netlist::and3_g(net_id a, net_id b, net_id c)
{
    if (a == const0_ || b == const0_ || c == const0_) {
        return add_const(false);
    }
    if (a == const1_) {
        return and_g(b, c);
    }
    if (b == const1_) {
        return and_g(a, c);
    }
    if (c == const1_) {
        return and_g(a, b);
    }
    return add_gate(gate_kind::and3_g, a, b, c);
}

net_id netlist::or3_g(net_id a, net_id b, net_id c)
{
    if (a == const1_ || b == const1_ || c == const1_) {
        return add_const(true);
    }
    if (a == const0_) {
        return or_g(b, c);
    }
    if (b == const0_) {
        return or_g(a, c);
    }
    if (c == const0_) {
        return or_g(a, b);
    }
    return add_gate(gate_kind::or3_g, a, b, c);
}

net_id netlist::mux_g(net_id a, net_id b, net_id sel)
{
    if (sel == const0_) {
        return a;
    }
    if (sel == const1_) {
        return b;
    }
    if (a == b) {
        return a;
    }
    return add_gate(gate_kind::mux_g, a, b, sel);
}

net_id netlist::maj_g(net_id a, net_id b, net_id c)
{
    if (a == const0_) {
        return and_g(b, c);
    }
    if (b == const0_) {
        return and_g(a, c);
    }
    if (c == const0_) {
        return and_g(a, b);
    }
    if (a == const1_) {
        return or_g(b, c);
    }
    if (b == const1_) {
        return or_g(a, c);
    }
    if (c == const1_) {
        return or_g(a, b);
    }
    return add_gate(gate_kind::maj_g, a, b, c);
}

void netlist::mark_output(const std::string& name, net_id id)
{
    check_fanin(id);
    outputs_[name] = id;
}

net_id netlist::input(const std::string& name) const
{
    const auto it = input_names_.find(name);
    if (it == input_names_.end()) {
        throw std::out_of_range("netlist: no input named " + name);
    }
    return it->second;
}

std::string netlist::input_name(net_id id) const
{
    for (const auto& [name, net] : input_names_) {
        if (net == id) {
            return name;
        }
    }
    return {};
}

net_id netlist::output(const std::string& name) const
{
    const auto it = outputs_.find(name);
    if (it == outputs_.end()) {
        throw std::out_of_range("netlist: no output named " + name);
    }
    return it->second;
}

std::size_t netlist::logic_gate_count() const noexcept
{
    std::size_t n = 0;
    for (const gate& g : gates_) {
        switch (g.kind) {
        case gate_kind::input:
        case gate_kind::constant:
        case gate_kind::buf:
            break;
        default:
            ++n;
        }
    }
    return n;
}

} // namespace dvafs
