#include "circuit/vcd.h"

#include <stdexcept>

namespace dvafs {

vcd_writer::vcd_writer(const std::string& path,
                       const std::string& top_module)
    : path_(path), top_(top_module), out_(path)
{
    if (!out_) {
        throw std::runtime_error("vcd_writer: cannot open " + path);
    }
}

std::string vcd_writer::make_id(std::size_t index)
{
    // Printable identifier characters per the VCD spec: '!' .. '~'.
    constexpr char lo = '!';
    constexpr int radix = '~' - '!' + 1;
    std::string id;
    do {
        id += static_cast<char>(lo + static_cast<int>(index % radix));
        index /= radix;
    } while (index > 0);
    return id;
}

void vcd_writer::add_signal(const std::string& name, net_id net)
{
    add_bus(name, bus{net});
}

void vcd_writer::add_bus(const std::string& name, const bus& nets)
{
    if (header_written_) {
        throw std::logic_error(
            "vcd_writer: signals must be added before sampling");
    }
    if (nets.empty()) {
        throw std::invalid_argument("vcd_writer: empty bus");
    }
    signal s;
    s.name = name;
    s.id = make_id(signals_.size());
    s.nets = nets;
    signals_.push_back(std::move(s));
}

void vcd_writer::write_header()
{
    out_ << "$version dvafs vcd_writer $end\n"
         << "$timescale 1ns $end\n"
         << "$scope module " << top_ << " $end\n";
    for (const signal& s : signals_) {
        if (s.nets.size() == 1) {
            out_ << "$var wire 1 " << s.id << ' ' << s.name << " $end\n";
        } else {
            out_ << "$var wire " << s.nets.size() << ' ' << s.id << ' '
                 << s.name << " [" << s.nets.size() - 1 << ":0] $end\n";
        }
    }
    out_ << "$upscope $end\n$enddefinitions $end\n";
    header_written_ = true;
}

std::string vcd_writer::value_of(const logic_sim& sim, const signal& s)
{
    if (s.nets.size() == 1) {
        return sim.value(s.nets[0]) ? "1" : "0";
    }
    std::string bits = "b";
    for (std::size_t i = s.nets.size(); i-- > 0;) {
        bits += sim.value(s.nets[i]) ? '1' : '0';
    }
    return bits;
}

void vcd_writer::sample(const logic_sim& sim, std::uint64_t time)
{
    if (!header_written_) {
        write_header();
    }
    if (!first_sample_ && time < last_time_) {
        throw std::invalid_argument("vcd_writer: time must not decrease");
    }
    bool stamp_written = false;
    const auto stamp = [&] {
        if (!stamp_written) {
            out_ << '#' << time << '\n';
            stamp_written = true;
        }
    };
    for (signal& s : signals_) {
        std::string v = value_of(sim, s);
        if (first_sample_ || v != s.last) {
            stamp();
            if (s.nets.size() == 1) {
                out_ << v << s.id << '\n';
            } else {
                out_ << v << ' ' << s.id << '\n';
            }
            s.last = std::move(v);
        }
    }
    first_sample_ = false;
    last_time_ = time;
    out_.flush();
}

} // namespace dvafs
