// Fixed-width block of uint64_t lanes for the compiled gate simulator.
//
// wide_word<W> holds 64*W simulation lanes as W consecutive uint64_t words
// (lane v lives in bit v%64 of word v/64 -- the natural widening of
// logic_sim64's single-word layout). Every operator is a plain loop over
// the W words with no cross-word dependency, which the compiler turns into
// SIMD: at W=4/8 one bitwise gate op over 256/512 lanes is a couple of
// vector instructions instead of a per-lane pass. W=1 degenerates to the
// 64-lane word and exists so one code path covers all widths.
//
// Toggle counting (the energy hot path) needs one cross-word operation:
// the "previous lane" shift used to detect transitions between adjacent
// vectors. lane_shift_transitions fuses shift, xor, mask and popcount in
// word order, carrying bit 63 of word k into bit 0 of word k+1, with the
// previous batch's final lane entering bit 0 of word 0 -- bit-exact
// against logic_sim64's (w ^ ((w << 1) | last)) & mask popcount.

#pragma once

#include <bit>
#include <cstdint>

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace dvafs {

template <int W>
struct wide_word {
    static_assert(W >= 1, "wide_word: W must be positive");
    static constexpr int words = W;
    static constexpr int lanes = 64 * W;

    std::uint64_t w[W];

    static constexpr wide_word splat(std::uint64_t v) noexcept
    {
        wide_word r{};
        for (int k = 0; k < W; ++k) {
            r.w[k] = v;
        }
        return r;
    }
    static constexpr wide_word zero() noexcept { return splat(0); }
    static constexpr wide_word ones() noexcept { return splat(~0ULL); }

    // All-ones in lanes [0, count), zero above: the partial-batch mask.
    static constexpr wide_word first_lanes(int count) noexcept
    {
        wide_word r{};
        for (int k = 0; k < W; ++k) {
            const int lo = 64 * k;
            if (count >= lo + 64) {
                r.w[k] = ~0ULL;
            } else if (count > lo) {
                r.w[k] = (1ULL << (count - lo)) - 1;
            } else {
                r.w[k] = 0;
            }
        }
        return r;
    }

    constexpr bool bit(int lane) const noexcept
    {
        return ((w[lane >> 6] >> (lane & 63)) & 1ULL) != 0;
    }
};

template <int W>
constexpr wide_word<W> operator&(const wide_word<W>& a,
                                 const wide_word<W>& b) noexcept
{
    wide_word<W> r{};
    for (int k = 0; k < W; ++k) {
        r.w[k] = a.w[k] & b.w[k];
    }
    return r;
}

template <int W>
constexpr wide_word<W> operator|(const wide_word<W>& a,
                                 const wide_word<W>& b) noexcept
{
    wide_word<W> r{};
    for (int k = 0; k < W; ++k) {
        r.w[k] = a.w[k] | b.w[k];
    }
    return r;
}

template <int W>
constexpr wide_word<W> operator^(const wide_word<W>& a,
                                 const wide_word<W>& b) noexcept
{
    wide_word<W> r{};
    for (int k = 0; k < W; ++k) {
        r.w[k] = a.w[k] ^ b.w[k];
    }
    return r;
}

template <int W>
constexpr wide_word<W> operator~(const wide_word<W>& a) noexcept
{
    wide_word<W> r{};
    for (int k = 0; k < W; ++k) {
        r.w[k] = ~a.w[k];
    }
    return r;
}

// Number of lane-to-lane transitions in `cur` under `mask`, with
// `last_lane` (0/1, the final lane of the previous batch) shifted into
// lane 0. This is the wide generalization of logic_sim64's toggle count.
// When the build enables AVX2 (e.g. -DDVAFS_MARCH=x86-64-v3), W-multiple-
// of-4 blocks take a vector path: the lane shift is built with a qword
// rotation, the popcount with the pshufb nibble LUT and psadbw; the
// result is identical to the scalar path bit for bit.
template <int W>
inline std::uint64_t lane_shift_transitions(const wide_word<W>& cur,
                                            std::uint64_t last_lane,
                                            const wide_word<W>& mask) noexcept
{
#if defined(__AVX2__)
    if constexpr (W % 4 == 0) {
        const __m256i lut =
            _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3,
                             4, 0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3,
                             3, 4);
        const __m256i low4 = _mm256_set1_epi8(0x0f);
        __m256i acc = _mm256_setzero_si256();
        std::uint64_t carry = last_lane;
        for (int q = 0; q < W / 4; ++q) {
            const __m256i w = _mm256_loadu_si256(
                reinterpret_cast<const __m256i*>(cur.w + 4 * q));
            const __m256i mk = _mm256_loadu_si256(
                reinterpret_cast<const __m256i*>(mask.w + 4 * q));
            // prev = [carry<<63, w0, w1, w2]: each qword's left neighbour,
            // so (prev >> 63) is the bit shifted into each lane 0.
            const __m256i rot = _mm256_permute4x64_epi64(w, 0x90);
            const __m256i prev = _mm256_blend_epi32(
                rot,
                _mm256_set1_epi64x(static_cast<long long>(carry << 63)),
                0x03);
            carry = cur.w[4 * q + 3] >> 63;
            const __m256i shifted = _mm256_or_si256(
                _mm256_slli_epi64(w, 1), _mm256_srli_epi64(prev, 63));
            const __m256i x =
                _mm256_and_si256(_mm256_xor_si256(w, shifted), mk);
            const __m256i lo =
                _mm256_shuffle_epi8(lut, _mm256_and_si256(x, low4));
            const __m256i hi = _mm256_shuffle_epi8(
                lut, _mm256_and_si256(_mm256_srli_epi16(x, 4), low4));
            acc = _mm256_add_epi64(
                acc, _mm256_sad_epu8(_mm256_add_epi8(lo, hi),
                                     _mm256_setzero_si256()));
        }
        const __m128i s =
            _mm_add_epi64(_mm256_castsi256_si128(acc),
                          _mm256_extracti128_si256(acc, 1));
        return static_cast<std::uint64_t>(_mm_cvtsi128_si64(s))
               + static_cast<std::uint64_t>(_mm_extract_epi64(s, 1));
    }
#endif
    std::uint64_t total = 0;
    std::uint64_t carry = last_lane;
    for (int k = 0; k < W; ++k) {
        const std::uint64_t shifted = (cur.w[k] << 1) | carry;
        carry = cur.w[k] >> 63;
        total += static_cast<std::uint64_t>(
            std::popcount((cur.w[k] ^ shifted) & mask.w[k]));
    }
    return total;
}

} // namespace dvafs
