// Fixed-width block of uint64_t lanes for the compiled gate simulator.
//
// wide_word<W> holds 64*W simulation lanes as W consecutive uint64_t words
// (lane v lives in bit v%64 of word v/64 -- the natural widening of
// logic_sim64's single-word layout). Every operator is a plain loop over
// the W words with no cross-word dependency, which the compiler turns into
// SIMD: at W=4/8 one bitwise gate op over 256/512 lanes is a couple of
// vector instructions instead of a per-lane pass. W=1 degenerates to the
// 64-lane word and exists so one code path covers all widths.
//
// Toggle counting (the energy hot path) needs one cross-word operation:
// the "previous lane" shift used to detect transitions between adjacent
// vectors. That fused shift+xor+mask+popcount lives in the host-SIMD
// layer (src/vec/, kernel_table::shift_transitions) so each ISA backend
// compiles it with real vector flags; this header stays a plain POD
// container with constexpr bitwise operators.

#pragma once

#include <cstdint>

namespace dvafs {

template <int W>
struct wide_word {
    static_assert(W >= 1, "wide_word: W must be positive");
    static constexpr int words = W;
    static constexpr int lanes = 64 * W;

    std::uint64_t w[W];

    static constexpr wide_word splat(std::uint64_t v) noexcept
    {
        wide_word r{};
        for (int k = 0; k < W; ++k) {
            r.w[k] = v;
        }
        return r;
    }
    static constexpr wide_word zero() noexcept { return splat(0); }
    static constexpr wide_word ones() noexcept { return splat(~0ULL); }

    // All-ones in lanes [0, count), zero above: the partial-batch mask.
    static constexpr wide_word first_lanes(int count) noexcept
    {
        wide_word r{};
        for (int k = 0; k < W; ++k) {
            const int lo = 64 * k;
            if (count >= lo + 64) {
                r.w[k] = ~0ULL;
            } else if (count > lo) {
                r.w[k] = (1ULL << (count - lo)) - 1;
            } else {
                r.w[k] = 0;
            }
        }
        return r;
    }

    constexpr bool bit(int lane) const noexcept
    {
        return ((w[lane >> 6] >> (lane & 63)) & 1ULL) != 0;
    }
};

template <int W>
constexpr wide_word<W> operator&(const wide_word<W>& a,
                                 const wide_word<W>& b) noexcept
{
    wide_word<W> r{};
    for (int k = 0; k < W; ++k) {
        r.w[k] = a.w[k] & b.w[k];
    }
    return r;
}

template <int W>
constexpr wide_word<W> operator|(const wide_word<W>& a,
                                 const wide_word<W>& b) noexcept
{
    wide_word<W> r{};
    for (int k = 0; k < W; ++k) {
        r.w[k] = a.w[k] | b.w[k];
    }
    return r;
}

template <int W>
constexpr wide_word<W> operator^(const wide_word<W>& a,
                                 const wide_word<W>& b) noexcept
{
    wide_word<W> r{};
    for (int k = 0; k < W; ++k) {
        r.w[k] = a.w[k] ^ b.w[k];
    }
    return r;
}

template <int W>
constexpr wide_word<W> operator~(const wide_word<W>& a) noexcept
{
    wide_word<W> r{};
    for (int k = 0; k < W; ++k) {
        r.w[k] = ~a.w[k];
    }
    return r;
}

} // namespace dvafs
