// Compile-then-run gate simulation: the energy hot path.
//
// logic_sim64 is an interpreter: one `switch (g.kind)` and three random
// gathers per gate per batch, and a hard 64-lane ceiling. Every energy
// figure in the repo (Fig. 2/3a/3b/4, Table I k-params, the measured mode
// frontiers, the streaming governor's prepare pass) bottoms out in that
// loop, so this module compiles the netlist once and then runs a schedule
// with no per-gate dispatch at all:
//
//  * Gates are levelized and sorted by kind into homogeneous runs stored
//    structure-of-arrays (in0[]/in1[]/in2[]/out[] index arrays per run).
//    Each run is evaluated by a tight branch-free kernel instantiated per
//    gate_kind from the shared truth table in circuit/gate_kinds.h, with
//    the per-net toggle popcount fused into the same pass.
//  * Lanes widen from 64 to 64*W via wide_word<W> (W = 1/4/8 -> 64/256/512
//    vectors per levelized pass); the W-word inner loops auto-vectorize.
//  * Tied inputs (subword mode selects, DAS precision selects, gated
//    operand LSBs) are baked in at compile time: constants are folded,
//    static fan-out cones are pruned from the schedule, and their values
//    are materialized once. A half-precision mode therefore simulates
//    roughly half the netlist instead of masking it dynamically.
//
// The executor is bit-identical to logic_sim64 on the same vector stream
// -- values, per-net toggles, switched capacitance, transitions, the
// first-vector warm-up and the batch-boundary toggle carry -- for every
// netlist, batch size and mode; tests/test_compiled_sim.cpp asserts this
// differentially against both scalar and 64-lane oracles. Mode-specialized
// schedules are only sound when the applied vectors actually honor the
// ties, so apply() validates the tied input words and throws on a
// violation instead of silently miscounting.
//
// Schedules are immutable after compilation and shared: one schedule
// serves any number of concurrent executors (sweep threads construct a
// private compiled_sim<W> each over the shared schedule, mirroring the
// logic_sim64-over-shared-netlist pattern). compiled_netlist_cache keys
// schedules on netlist *content* (structural hash), not address, so
// identical netlists -- e.g. repeated dvafs_multiplier(16) constructions
// -- share one compiled schedule process-wide, the frontier_cache pattern.

#pragma once

#include "circuit/netlist.h"
#include "circuit/wide_word.h"

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace dvafs {

struct tech_model; // circuit/tech.h

// One kind-homogeneous slice of the schedule: gates [begin, end) of the
// SoA index arrays, all of the same kind, in dependency-safe order.
struct compiled_run {
    gate_kind kind = gate_kind::buf;
    std::uint32_t begin = 0;
    std::uint32_t end = 0;
};

// The compiled form of a netlist under a set of tied inputs. Fully
// self-contained (kinds and input layout are copied), so a schedule never
// dangles even if the source netlist is destroyed first.
//
// Nets are renumbered into a *dense* id space ordered hot-to-cold:
// scheduled gates first, in schedule order -- so a gate's value, toggle
// and last-lane slots are written at index == its schedule position,
// turning three of the kernel's memory streams sequential -- then the
// live inputs, then every folded (constant) net. dense_of maps original
// net ids to dense slots for the value/toggle accessors.
struct compiled_schedule {
    // -- netlist shape -------------------------------------------------------
    std::size_t net_count = 0;
    std::size_t input_count = 0;          // primary inputs, netlist order
    std::vector<net_id> dense_of;         // original net id -> dense slot
    std::vector<gate_kind> kinds;         // per dense slot, for cap weights

    // -- dynamic part --------------------------------------------------------
    struct live_input {
        net_id dense = 0;                 // dense slot of this input
        std::uint32_t pos = 0;            // index in the netlist input order
    };
    std::vector<live_input> live_inputs;  // inputs that still vary
    std::vector<compiled_run> runs;       // level-major, kind-sorted
    // SoA fanin arrays (dense ids), one entry per scheduled gate; the
    // gate's own output slot is its array index. Absent fanins hold 0.
    std::vector<net_id> in0;
    std::vector<net_id> in1;
    std::vector<net_id> in2;

    // -- folded part ---------------------------------------------------------
    // Tied-input checks run on every apply(). Besides the input position
    // and required value, each check carries the original net id and the
    // input's registered name so a violation names the offending input the
    // same way the schedule verifier does.
    struct tied_check {
        std::uint32_t pos = 0; // index in the netlist input order
        bool value = false;    // the baked-in constant
        net_id net = no_net;   // original primary-input net id
        std::string name;      // input name ("" when unnamed)
    };
    std::vector<tied_check> tied_checks;
    std::vector<net_id> const_dense;      // dense slots with fixed values
    std::vector<std::uint8_t> const_vals; // parallel to const_dense
    std::size_t pruned_gates = 0;         // logic gates folded out (stats)

    std::size_t scheduled_gates() const noexcept { return in0.size(); }
};

// Compiles `nl` under `tied` (pairs of primary-input net and constant
// value, e.g. dvafs_multiplier::tied_inputs): three-valued constant
// propagation folds every gate whose output is fixed, the survivors are
// levelized and kind-sorted into runs. An empty tie set compiles the
// generic schedule (only constant gates and their cones fold). Throws
// std::invalid_argument when a tied net is not a primary input.
compiled_schedule
compile_netlist(const netlist& nl,
                const std::vector<std::pair<net_id, bool>>& tied = {});

// Verify-on-compile: when enabled, compile_netlist runs the static
// verifiers from src/analysis/ (netlist structure, then schedule
// soundness against the three-valued folding oracle) on every compile and
// throws verification_error on a failed report. Off by default -- the
// verifiers cost O(netlist) per compile and schedules are cached -- and
// overridable per process via the DVAFS_VERIFY_COMPILE environment
// variable ("1"/"on" enables, "0"/"off" disables; the setter wins once
// called). Thread-safe.
void set_verify_on_compile(bool on) noexcept;
bool verify_on_compile() noexcept;

// -- schedule persistence -----------------------------------------------------

// Byte-serializes a compiled schedule for the on-disk cache
// (util/disk_store.h). The inverse returns nullopt on any structural
// inconsistency -- truncation, bad sizes, out-of-range dense slots or run
// bounds -- so a corrupt or stale blob degrades to "recompile", never a
// crash or an unsound schedule.
std::vector<std::uint8_t> serialize_schedule(const compiled_schedule& s);
std::optional<compiled_schedule>
deserialize_schedule(const std::vector<std::uint8_t>& bytes);

// -- resumable activity state -------------------------------------------------

// The executor's cross-batch statistics carry, detached from the executor:
// per-net last-lane values, per-net toggle counters, the transition count
// and the warm-up flag. save/load round trips are bit-exact, which is what
// lets a measurement suspend after N vectors (persisting this struct) and
// resume to the same statistics a single uninterrupted run produces.
struct sim_activity_state {
    std::vector<std::uint8_t> last;      // final-lane value per dense net
    std::vector<std::uint64_t> toggles;  // per dense net
    std::uint64_t transitions = 0;
    bool initialized = false;
};

// Switched capacitance from a detached toggle array (original-net-order
// summation -- the bit-exactness contract all engines share). The member
// compiled_sim::switched_capacitance_ff delegates here.
double schedule_switched_capacitance_ff(const compiled_schedule& s,
                                        const std::vector<std::uint64_t>&
                                            toggles,
                                        const tech_model& tech);

// Wide-word executor over a compiled schedule; W uint64_t blocks = 64*W
// lanes per pass. Same statistics contract as logic_sim64 (lanes ordered
// in time, toggle carry across batches, warm-up first vector).
template <int W>
class compiled_sim {
public:
    static constexpr int lane_capacity = 64 * W;

    explicit compiled_sim(std::shared_ptr<const compiled_schedule> schedule);

    // Evaluates `count` (1..64*W) input vectors in one schedule pass.
    // input_words holds W words per primary input, input-major (words
    // [i*W, (i+1)*W) are input i's lanes; lane v = bit v%64 of word v/64
    // -- dvafs_multiplier::pack_input_words with blocks=W produces this).
    // Throws std::invalid_argument on a size/count mismatch or when a
    // tied input's words contradict the schedule's baked-in constants.
    void apply(const std::vector<std::uint64_t>& input_words, int count);

    // Value of a net under vector `lane` of the last batch (lane must be
    // in [0, 64*W); lanes >= the last count are garbage, as in
    // logic_sim64).
    bool value(net_id id, int lane) const;
    // Raw lane block of a net.
    std::uint64_t word(net_id id, int block) const;

    // Reads a multi-bit bus (LSB first) under vector `lane`. Throws
    // std::invalid_argument when the bus is wider than 64 nets.
    std::uint64_t read_bus(const std::vector<net_id>& nets, int lane) const;

    // -- activity statistics (same contract as logic_sim64) ------------------
    std::uint64_t toggles(net_id id) const
    {
        return toggles_[sched_->dense_of.at(id)];
    }
    std::uint64_t total_toggles() const noexcept;
    double switched_capacitance_ff(const tech_model& tech) const;
    std::uint64_t transitions() const noexcept { return transitions_; }

    // Clears counters but keeps the last applied values (warm-up contract).
    void reset_stats();

    // -- suspend / resume / parallel merge -----------------------------------
    // Detached copy of the statistics carry (see sim_activity_state).
    sim_activity_state save_activity() const;
    // Restores a saved carry; the subsequent apply() continues the
    // statistics exactly where the save left off. Lane *values* are not
    // part of the carry (the next apply overwrites every live net), only
    // the per-net last-lane bits that seed the toggle comparison. Throws
    // std::invalid_argument when the state's shape does not match this
    // schedule.
    void load_activity(const sim_activity_state& st);
    // Adopts `src`'s cross-batch carry (last-lane values + warm-up flag)
    // without touching the counters: after a chunked parallel batch the
    // owning executor takes the *final* chunk's carry so the next batch
    // continues as if it had run every chunk itself. Both executors must
    // run the same schedule object.
    void adopt_carry(const compiled_sim& src);
    // Accumulates `src`'s counters (per-net toggles + transitions) into
    // this executor. Integer sums, so merge order cannot perturb results.
    // Both executors must run the same schedule object.
    void merge_stats(const compiled_sim& src);

    const compiled_schedule& schedule() const noexcept { return *sched_; }
    const std::shared_ptr<const compiled_schedule>&
    schedule_ptr() const noexcept
    {
        return sched_;
    }

private:
    // Gate runs execute through the dispatched host-SIMD backend
    // (src/vec/): one indirect call per kind-homogeneous run, the kind
    // switch and the W-word kernels live in the backend TU. Every backend
    // is bit-identical to the scalar one, so engine results never depend
    // on the host ISA.
    void dispatch_run(const compiled_run& run,
                      const wide_word<W>& toggle_mask, int last_word,
                      int last_bit);

    std::shared_ptr<const compiled_schedule> sched_;
    std::vector<wide_word<W>> values_;
    std::vector<std::uint8_t> last_; // final-lane value of the prev batch
    std::vector<std::uint64_t> toggles_;
    std::uint64_t transitions_ = 0;
    bool initialized_ = false;
};

extern template class compiled_sim<1>;
extern template class compiled_sim<4>;
extern template class compiled_sim<8>;

// Process-wide pool of warm executors, keyed by schedule. An executor is
// three net_count-sized allocations (values, last, toggles); sweeps and
// batched error analysis construct one per measured point, so reusing
// idle executors removes the dominant allocation from the measurement hot
// path. Leases hand the executor back on destruction. A leased executor
// carries *stale* values/carry from its previous use -- every measurement
// protocol here (warm-up vector + reset_stats, or load_activity) fully
// re-establishes that state, so reuse is bit-invisible; the pool does not
// scrub. Constant-net values are set at construction and never written,
// so they stay valid across reuses of the same schedule.
template <int W>
class compiled_sim_pool {
public:
    static compiled_sim_pool& global();

    class lease {
    public:
        lease() = default;
        lease(lease&& o) noexcept
            : pool_(o.pool_), sim_(std::move(o.sim_))
        {
            o.pool_ = nullptr;
        }
        lease& operator=(lease&& o) noexcept
        {
            if (this != &o) {
                release();
                pool_ = o.pool_;
                sim_ = std::move(o.sim_);
                o.pool_ = nullptr;
            }
            return *this;
        }
        lease(const lease&) = delete;
        lease& operator=(const lease&) = delete;
        ~lease() { release(); }

        compiled_sim<W>& operator*() const noexcept { return *sim_; }
        compiled_sim<W>* operator->() const noexcept { return sim_.get(); }
        compiled_sim<W>* get() const noexcept { return sim_.get(); }
        explicit operator bool() const noexcept { return sim_ != nullptr; }

    private:
        friend class compiled_sim_pool;
        lease(compiled_sim_pool* pool,
              std::unique_ptr<compiled_sim<W>> sim) noexcept
            : pool_(pool), sim_(std::move(sim))
        {
        }
        void release() noexcept;

        compiled_sim_pool* pool_ = nullptr;
        std::unique_ptr<compiled_sim<W>> sim_;
    };

    // An idle executor over `sched` (or a freshly constructed one).
    lease acquire(std::shared_ptr<const compiled_schedule> sched);

    // Idle executors currently pooled for `sched` (tests).
    std::size_t idle_count(const compiled_schedule& sched);

private:
    compiled_sim_pool() = default;
    void give_back(std::unique_ptr<compiled_sim<W>> sim);

    std::mutex mu_;
    // Keyed by schedule address: schedules are immutable and cached for
    // the process lifetime (compiled_netlist_cache), so an address
    // identifies one schedule for as long as any executor can exist.
    std::map<const compiled_schedule*,
             std::vector<std::unique_ptr<compiled_sim<W>>>>
        idle_;
};

extern template class compiled_sim_pool<1>;
extern template class compiled_sim_pool<4>;
extern template class compiled_sim_pool<8>;

// Process-wide cache of compiled schedules, keyed on netlist content
// (structural hash over gates and inputs) plus the tie set -- NOT on the
// netlist's address, so short-lived netlist objects with identical
// structure (each dvafs_multiplier(16), say) share one schedule. Entries
// are immutable and live for the whole process (the netlist_cache /
// frontier_cache pattern). When DVAFS_CACHE_DIR is set, a memory miss
// consults the on-disk store ("schedule" kind, same content key) before
// compiling, and a fresh compile is persisted for the next process --
// deserialized schedules that fail the structural consistency checks are
// recompiled silently.
class compiled_netlist_cache {
public:
    // Public constructor so tests can run an isolated instance against a
    // private store; production code shares global().
    compiled_netlist_cache() = default;

    static compiled_netlist_cache& global();

    std::shared_ptr<const compiled_schedule>
    get(const netlist& nl,
        const std::vector<std::pair<net_id, bool>>& tied = {});

    // The content key get() uses (exposed for the disk-store tests).
    static std::string
    key_for(const netlist& nl,
            const std::vector<std::pair<net_id, bool>>& tied = {});

    struct cache_stats {
        std::uint64_t hits = 0;       // served from memory
        std::uint64_t disk_hits = 0;  // deserialized from the store
        std::uint64_t compiles = 0;   // compiled from the netlist
    };
    cache_stats stats() const noexcept
    {
        return {hits_.load(std::memory_order_relaxed),
                disk_hits_.load(std::memory_order_relaxed),
                compiles_.load(std::memory_order_relaxed)};
    }

private:
    std::mutex mu_;
    std::map<std::string, std::shared_ptr<const compiled_schedule>> entries_;
    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> disk_hits_{0};
    std::atomic<std::uint64_t> compiles_{0};
};

} // namespace dvafs
