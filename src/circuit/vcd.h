// VCD (Value Change Dump) writer: records logic_sim states as a standard
// waveform file viewable in GTKWave & co. Useful for inspecting how the
// DVAFS multiplier's active cone changes across modes, and for debugging
// netlist builders.

#pragma once

#include "circuit/cells.h"
#include "circuit/logic_sim.h"
#include "circuit/netlist.h"

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

namespace dvafs {

class vcd_writer {
public:
    // Creates `path` and writes the VCD header once the first signal set
    // is registered. Throws std::runtime_error if the file cannot be
    // created.
    explicit vcd_writer(const std::string& path,
                        const std::string& top_module = "dvafs");

    // Registers a single-bit signal / a multi-bit bus (LSB first).
    // Must be called before the first sample().
    void add_signal(const std::string& name, net_id net);
    void add_bus(const std::string& name, const bus& nets);

    // Emits value changes for the current simulator state at `time`
    // (arbitrary units; must be non-decreasing).
    void sample(const logic_sim& sim, std::uint64_t time);

    std::size_t signal_count() const noexcept { return signals_.size(); }
    const std::string& path() const noexcept { return path_; }

private:
    struct signal {
        std::string name;
        std::string id; // VCD short identifier
        bus nets;
        std::string last; // last dumped value string
    };

    void write_header();
    static std::string make_id(std::size_t index);
    static std::string value_of(const logic_sim& sim, const signal& s);

    std::string path_;
    std::string top_;
    std::ofstream out_;
    std::vector<signal> signals_;
    bool header_written_ = false;
    bool first_sample_ = true;
    std::uint64_t last_time_ = 0;
};

} // namespace dvafs
