#include "circuit/tech.h"

#include <cmath>
#include <stdexcept>

namespace dvafs {

namespace {

// Relative capacitance / delay of each gate kind vs. a reference NAND2.
// Values follow typical standard-cell library ratios: XOR/MUX/MAJ cells are
// roughly 1.5-2x a NAND2 in input + internal capacitance and delay.
struct kind_factors {
    double cap;
    double delay;
};

kind_factors factors(gate_kind k) noexcept
{
    switch (k) {
    case gate_kind::input: return {0.0, 0.0};
    case gate_kind::constant: return {0.0, 0.0};
    case gate_kind::buf: return {0.6, 0.6};
    case gate_kind::not_g: return {0.5, 0.5};
    case gate_kind::and_g: return {1.1, 1.1};
    case gate_kind::or_g: return {1.1, 1.1};
    case gate_kind::xor_g: return {1.7, 1.6};
    case gate_kind::nand_g: return {1.0, 1.0};
    case gate_kind::nor_g: return {1.0, 1.1};
    case gate_kind::xnor_g: return {1.7, 1.6};
    case gate_kind::and3_g: return {1.5, 1.4};
    case gate_kind::or3_g: return {1.5, 1.5};
    case gate_kind::mux_g: return {1.8, 1.4};
    case gate_kind::maj_g: return {2.0, 1.5};
    }
    return {1.0, 1.0};
}

} // namespace

double tech_model::gate_cap_ff(gate_kind k) const noexcept
{
    return unit_cap_ff * factors(k).cap;
}

double tech_model::gate_delay_ps(gate_kind k, double vdd) const noexcept
{
    return unit_delay_ps * factors(k).delay * delay_scale(vdd);
}

double tech_model::delay_scale(double vdd) const
{
    if (vdd <= vth) {
        throw std::domain_error("tech_model: vdd at or below threshold");
    }
    const auto d = [&](double v) {
        return v / std::pow(v - vth, alpha);
    };
    return d(vdd) / d(vdd_nom);
}

double tech_model::solve_voltage(double delay_ratio) const
{
    if (delay_ratio <= 1.0) {
        return vdd_nom;
    }
    // delay_scale is monotonically decreasing in v over (vth, vdd_nom];
    // bisect for delay_scale(v) == delay_ratio.
    double lo = vth + 1e-4; // delay -> huge
    double hi = vdd_nom;    // delay ratio 1
    for (int it = 0; it < 80; ++it) {
        const double mid = 0.5 * (lo + hi);
        if (delay_scale(mid) > delay_ratio) {
            lo = mid; // too slow: need more voltage
        } else {
            hi = mid;
        }
    }
    const double v = 0.5 * (lo + hi);
    return std::max(v, vmin);
}

const tech_model& tech_40nm_lp()
{
    // Calibration: with vth=0.55 and alpha=2.0, a 2x delay budget solves to
    // about 0.90 V (paper: DVAS 4 b -> 0.9 V) and an 8x budget to about
    // 0.70 V before the vmin clamp (paper: DVAFS 4x4 b -> 0.7-0.75 V).
    // unit_delay_ps is set so the 16-bit DVAFS multiplier's full-precision
    // critical path is ~2 ns (the paper's 500 MHz operating point);
    // unit_cap_ff so its full-precision energy/word is ~2.63 pJ at 1.1 V.
    static const tech_model t{
        .name = "generic-40nm-LP-LVT",
        .vdd_nom = 1.1,
        .vth = 0.55,
        .alpha = 2.0,
        .vmin = 0.70,
        .unit_delay_ps = 48.0,
        .unit_cap_ff = 2.0,
    };
    return t;
}

const tech_model& tech_28nm_fdsoi()
{
    // Calibration targets (Envision, Table III): 200 MHz @ 1.03 V,
    // 100 MHz @ 0.80 V, 50 MHz @ 0.65 V. FDSOI bodies allow lower vmin.
    static const tech_model t{
        .name = "generic-28nm-FDSOI",
        .vdd_nom = 1.03,
        .vth = 0.52,
        .alpha = 1.6,
        .vmin = 0.60,
        .unit_delay_ps = 10.0,
        .unit_cap_ff = 0.6,
    };
    return t;
}

} // namespace dvafs
