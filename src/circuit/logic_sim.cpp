#include "circuit/logic_sim.h"

#include "circuit/gate_kinds.h"
#include "circuit/tech.h"

#include <bit>
#include <stdexcept>

namespace dvafs {

// Both interpreters and the constant propagation below evaluate gates
// through the one shared truth table in circuit/gate_kinds.h (the compiled
// simulator's kernels use the same table with wide words), so a gate kind
// is defined in exactly one place.

logic_sim::logic_sim(const netlist& nl)
    : nl_(nl),
      values_(nl.size(), 0),
      prev_(nl.size(), 0),
      toggles_(nl.size(), 0)
{
}

void logic_sim::apply(const std::vector<bool>& input_values)
{
    const auto& ins = nl_.inputs();
    if (input_values.size() != ins.size()) {
        throw std::invalid_argument("logic_sim: input vector size mismatch");
    }
    for (std::size_t i = 0; i < ins.size(); ++i) {
        values_[ins[i]] = input_values[i] ? 1 : 0;
    }
    evaluate();
}

void logic_sim::apply_packed(std::uint64_t bits)
{
    const auto& ins = nl_.inputs();
    if (ins.size() > 64) {
        throw std::invalid_argument("logic_sim: too many inputs to pack");
    }
    std::vector<bool> v(ins.size());
    for (std::size_t i = 0; i < ins.size(); ++i) {
        v[i] = ((bits >> i) & 1ULL) != 0;
    }
    apply(v);
}

void logic_sim::evaluate()
{
    const auto& gates = nl_.gates();
    for (std::size_t i = 0; i < gates.size(); ++i) {
        const gate& g = gates[i];
        if (g.kind == gate_kind::input) {
            continue; // already set
        }
        if (g.kind == gate_kind::constant) {
            values_[i] = g.aux;
            continue;
        }
        const int arity = gate_kind_arity(g.kind);
        const std::uint8_t a = values_[g.in0];
        const std::uint8_t b = arity >= 2 ? values_[g.in1] : std::uint8_t{0};
        const std::uint8_t c = arity >= 3 ? values_[g.in2] : std::uint8_t{0};
        values_[i] = eval_gate_kind<std::uint8_t>(g.kind, a, b, c,
                                                  std::uint8_t{1});
    }
    if (initialized_) {
        ++transitions_;
        for (std::size_t i = 0; i < values_.size(); ++i) {
            toggles_[i] += static_cast<std::uint64_t>(
                values_[i] != prev_[i]);
        }
    }
    prev_ = values_;
    initialized_ = true;
}

std::uint64_t logic_sim::read_bus(const std::vector<net_id>& nets) const
{
    if (nets.size() > 64) {
        throw std::invalid_argument(
            "logic_sim: bus wider than 64 nets cannot be packed");
    }
    std::uint64_t out = 0;
    for (std::size_t i = 0; i < nets.size(); ++i) {
        out |= static_cast<std::uint64_t>(values_.at(nets[i])) << i;
    }
    return out;
}

std::uint64_t logic_sim::total_toggles() const noexcept
{
    std::uint64_t total = 0;
    for (const std::uint64_t t : toggles_) {
        total += t;
    }
    return total;
}

double logic_sim::switched_capacitance_ff(const tech_model& tech) const
{
    double total = 0.0;
    const auto& gates = nl_.gates();
    for (std::size_t i = 0; i < gates.size(); ++i) {
        if (toggles_[i] == 0) {
            continue;
        }
        total += static_cast<double>(toggles_[i])
                 * tech.gate_cap_ff(gates[i].kind);
    }
    return total;
}

void logic_sim::reset_stats()
{
    std::fill(toggles_.begin(), toggles_.end(), 0);
    transitions_ = 0;
}

logic_sim64::logic_sim64(const netlist& nl)
    : nl_(nl),
      values_(nl.size(), 0),
      last_(nl.size(), 0),
      toggles_(nl.size(), 0)
{
}

void logic_sim64::apply(const std::vector<std::uint64_t>& input_words,
                        int count)
{
    const auto& ins = nl_.inputs();
    if (input_words.size() != ins.size()) {
        throw std::invalid_argument("logic_sim64: input word count mismatch");
    }
    if (count < 1 || count > 64) {
        throw std::invalid_argument("logic_sim64: count must be in [1, 64]");
    }
    for (std::size_t i = 0; i < ins.size(); ++i) {
        values_[ins[i]] = input_words[i];
    }

    // Levelized pass: every gate function is bitwise, so the 64 lanes stay
    // independent through arbitrary logic.
    const auto& gates = nl_.gates();
    std::uint64_t* v = values_.data();
    for (std::size_t i = 0; i < gates.size(); ++i) {
        const gate& g = gates[i];
        if (g.kind == gate_kind::input) {
            continue; // already set
        }
        if (g.kind == gate_kind::constant) {
            v[i] = g.aux ? ~0ULL : 0ULL;
            continue;
        }
        const int arity = gate_kind_arity(g.kind);
        const std::uint64_t a = v[g.in0];
        const std::uint64_t b = arity >= 2 ? v[g.in1] : 0ULL;
        const std::uint64_t c = arity >= 3 ? v[g.in2] : 0ULL;
        v[i] = eval_gate_kind<std::uint64_t>(g.kind, a, b, c, ~0ULL);
    }

    // Toggle accounting: transitions happen between adjacent lanes and
    // across the batch boundary (previous batch's last lane -> lane 0).
    // The first vector ever applied initializes state, as in logic_sim.
    const std::uint64_t batch_mask =
        count == 64 ? ~0ULL : ((1ULL << count) - 1);
    std::uint64_t first_mask = ~0ULL;
    if (!initialized_) {
        first_mask = ~1ULL;
    }
    for (std::size_t i = 0; i < values_.size(); ++i) {
        const std::uint64_t w = values_[i];
        const std::uint64_t shifted =
            (w << 1) | static_cast<std::uint64_t>(last_[i]);
        toggles_[i] += static_cast<std::uint64_t>(
            std::popcount((w ^ shifted) & batch_mask & first_mask));
        last_[i] = static_cast<std::uint8_t>((w >> (count - 1)) & 1ULL);
    }
    transitions_ +=
        static_cast<std::uint64_t>(count) - (initialized_ ? 0U : 1U);
    initialized_ = true;
}

std::uint64_t logic_sim64::read_bus(const std::vector<net_id>& nets,
                                    int lane) const
{
    if (nets.size() > 64) {
        throw std::invalid_argument(
            "logic_sim64: bus wider than 64 nets cannot be packed");
    }
    std::uint64_t out = 0;
    for (std::size_t i = 0; i < nets.size(); ++i) {
        out |= ((values_.at(nets[i]) >> lane) & 1ULL) << i;
    }
    return out;
}

std::uint64_t logic_sim64::total_toggles() const noexcept
{
    std::uint64_t total = 0;
    for (const std::uint64_t t : toggles_) {
        total += t;
    }
    return total;
}

double logic_sim64::switched_capacitance_ff(const tech_model& tech) const
{
    double total = 0.0;
    const auto& gates = nl_.gates();
    for (std::size_t i = 0; i < gates.size(); ++i) {
        if (toggles_[i] == 0) {
            continue;
        }
        total += static_cast<double>(toggles_[i])
                 * tech.gate_cap_ff(gates[i].kind);
    }
    return total;
}

void logic_sim64::reset_stats()
{
    std::fill(toggles_.begin(), toggles_.end(), 0);
    transitions_ = 0;
}

std::vector<std::uint8_t>
propagate_constants(const netlist& nl,
                    const std::vector<std::pair<net_id, bool>>& tied)
{
    std::vector<std::uint8_t> val(nl.size(), ternary_x);
    for (const auto& [id, value] : tied) {
        val.at(id) = value ? ternary_1 : ternary_0;
    }

    const auto& gates = nl.gates();
    for (std::size_t i = 0; i < gates.size(); ++i) {
        const gate& g = gates[i];
        if (g.kind == gate_kind::input) {
            continue; // stays as tied or X
        }
        if (g.kind == gate_kind::constant) {
            val[i] = g.aux ? ternary_1 : ternary_0;
            continue;
        }
        const int arity = gate_kind_arity(g.kind);
        const std::uint8_t a = val[g.in0];
        const std::uint8_t b = arity >= 2 ? val[g.in1] : ternary_x;
        const std::uint8_t c = arity >= 3 ? val[g.in2] : ternary_x;
        val[i] = eval_gate_kind_x(g.kind, a, b, c);
    }
    return val;
}

std::vector<bool>
find_static_gates(const netlist& nl,
                  const std::vector<std::pair<net_id, bool>>& tied)
{
    const std::vector<std::uint8_t> val = propagate_constants(nl, tied);
    std::vector<bool> is_static(val.size(), false);
    for (std::size_t i = 0; i < val.size(); ++i) {
        is_static[i] = (val[i] != ternary_x);
    }
    return is_static;
}

} // namespace dvafs
