#include "circuit/logic_sim.h"

#include "circuit/tech.h"

#include <bit>
#include <cassert>

namespace dvafs {

namespace {

inline std::uint8_t eval_gate(const gate& g,
                              const std::vector<std::uint8_t>& v)
{
    switch (g.kind) {
    case gate_kind::input:
        return 0; // set externally; never reached in evaluate()
    case gate_kind::constant:
        return g.aux;
    case gate_kind::buf:
        return v[g.in0];
    case gate_kind::not_g:
        return v[g.in0] ^ 1U;
    case gate_kind::and_g:
        return v[g.in0] & v[g.in1];
    case gate_kind::or_g:
        return v[g.in0] | v[g.in1];
    case gate_kind::xor_g:
        return v[g.in0] ^ v[g.in1];
    case gate_kind::nand_g:
        return (v[g.in0] & v[g.in1]) ^ 1U;
    case gate_kind::nor_g:
        return (v[g.in0] | v[g.in1]) ^ 1U;
    case gate_kind::xnor_g:
        return (v[g.in0] ^ v[g.in1]) ^ 1U;
    case gate_kind::and3_g:
        return v[g.in0] & v[g.in1] & v[g.in2];
    case gate_kind::or3_g:
        return v[g.in0] | v[g.in1] | v[g.in2];
    case gate_kind::mux_g:
        return v[g.in2] ? v[g.in1] : v[g.in0];
    case gate_kind::maj_g:
        return static_cast<std::uint8_t>(
            (v[g.in0] + v[g.in1] + v[g.in2]) >= 2);
    }
    return 0;
}

} // namespace

logic_sim::logic_sim(const netlist& nl)
    : nl_(nl),
      values_(nl.size(), 0),
      prev_(nl.size(), 0),
      toggles_(nl.size(), 0)
{
}

void logic_sim::apply(const std::vector<bool>& input_values)
{
    const auto& ins = nl_.inputs();
    if (input_values.size() != ins.size()) {
        throw std::invalid_argument("logic_sim: input vector size mismatch");
    }
    for (std::size_t i = 0; i < ins.size(); ++i) {
        values_[ins[i]] = input_values[i] ? 1 : 0;
    }
    evaluate();
}

void logic_sim::apply_packed(std::uint64_t bits)
{
    const auto& ins = nl_.inputs();
    if (ins.size() > 64) {
        throw std::invalid_argument("logic_sim: too many inputs to pack");
    }
    std::vector<bool> v(ins.size());
    for (std::size_t i = 0; i < ins.size(); ++i) {
        v[i] = ((bits >> i) & 1ULL) != 0;
    }
    apply(v);
}

void logic_sim::evaluate()
{
    const auto& gates = nl_.gates();
    for (std::size_t i = 0; i < gates.size(); ++i) {
        const gate& g = gates[i];
        if (g.kind == gate_kind::input) {
            continue; // already set
        }
        values_[i] = eval_gate(g, values_);
    }
    if (initialized_) {
        ++transitions_;
        for (std::size_t i = 0; i < values_.size(); ++i) {
            toggles_[i] += static_cast<std::uint64_t>(
                values_[i] != prev_[i]);
        }
    }
    prev_ = values_;
    initialized_ = true;
}

std::uint64_t logic_sim::read_bus(const std::vector<net_id>& nets) const
{
    assert(nets.size() <= 64);
    std::uint64_t out = 0;
    for (std::size_t i = 0; i < nets.size(); ++i) {
        out |= static_cast<std::uint64_t>(values_.at(nets[i])) << i;
    }
    return out;
}

std::uint64_t logic_sim::total_toggles() const noexcept
{
    std::uint64_t total = 0;
    for (const std::uint64_t t : toggles_) {
        total += t;
    }
    return total;
}

double logic_sim::switched_capacitance_ff(const tech_model& tech) const
{
    double total = 0.0;
    const auto& gates = nl_.gates();
    for (std::size_t i = 0; i < gates.size(); ++i) {
        if (toggles_[i] == 0) {
            continue;
        }
        total += static_cast<double>(toggles_[i])
                 * tech.gate_cap_ff(gates[i].kind);
    }
    return total;
}

void logic_sim::reset_stats()
{
    std::fill(toggles_.begin(), toggles_.end(), 0);
    transitions_ = 0;
}

logic_sim64::logic_sim64(const netlist& nl)
    : nl_(nl),
      values_(nl.size(), 0),
      last_(nl.size(), 0),
      toggles_(nl.size(), 0)
{
}

void logic_sim64::apply(const std::vector<std::uint64_t>& input_words,
                        int count)
{
    const auto& ins = nl_.inputs();
    if (input_words.size() != ins.size()) {
        throw std::invalid_argument("logic_sim64: input word count mismatch");
    }
    if (count < 1 || count > 64) {
        throw std::invalid_argument("logic_sim64: count must be in [1, 64]");
    }
    for (std::size_t i = 0; i < ins.size(); ++i) {
        values_[ins[i]] = input_words[i];
    }

    // Levelized pass: every gate function is bitwise, so the 64 lanes stay
    // independent through arbitrary logic.
    const auto& gates = nl_.gates();
    std::uint64_t* v = values_.data();
    for (std::size_t i = 0; i < gates.size(); ++i) {
        const gate& g = gates[i];
        switch (g.kind) {
        case gate_kind::input:
            break; // already set
        case gate_kind::constant:
            v[i] = g.aux ? ~0ULL : 0ULL;
            break;
        case gate_kind::buf:
            v[i] = v[g.in0];
            break;
        case gate_kind::not_g:
            v[i] = ~v[g.in0];
            break;
        case gate_kind::and_g:
            v[i] = v[g.in0] & v[g.in1];
            break;
        case gate_kind::or_g:
            v[i] = v[g.in0] | v[g.in1];
            break;
        case gate_kind::xor_g:
            v[i] = v[g.in0] ^ v[g.in1];
            break;
        case gate_kind::nand_g:
            v[i] = ~(v[g.in0] & v[g.in1]);
            break;
        case gate_kind::nor_g:
            v[i] = ~(v[g.in0] | v[g.in1]);
            break;
        case gate_kind::xnor_g:
            v[i] = ~(v[g.in0] ^ v[g.in1]);
            break;
        case gate_kind::and3_g:
            v[i] = v[g.in0] & v[g.in1] & v[g.in2];
            break;
        case gate_kind::or3_g:
            v[i] = v[g.in0] | v[g.in1] | v[g.in2];
            break;
        case gate_kind::mux_g:
            v[i] = (v[g.in2] & v[g.in1]) | (~v[g.in2] & v[g.in0]);
            break;
        case gate_kind::maj_g:
            v[i] = (v[g.in0] & v[g.in1]) | (v[g.in1] & v[g.in2])
                   | (v[g.in0] & v[g.in2]);
            break;
        }
    }

    // Toggle accounting: transitions happen between adjacent lanes and
    // across the batch boundary (previous batch's last lane -> lane 0).
    // The first vector ever applied initializes state, as in logic_sim.
    const std::uint64_t batch_mask =
        count == 64 ? ~0ULL : ((1ULL << count) - 1);
    std::uint64_t first_mask = ~0ULL;
    if (!initialized_) {
        first_mask = ~1ULL;
    }
    for (std::size_t i = 0; i < values_.size(); ++i) {
        const std::uint64_t w = values_[i];
        const std::uint64_t shifted =
            (w << 1) | static_cast<std::uint64_t>(last_[i]);
        toggles_[i] += static_cast<std::uint64_t>(
            std::popcount((w ^ shifted) & batch_mask & first_mask));
        last_[i] = static_cast<std::uint8_t>((w >> (count - 1)) & 1ULL);
    }
    transitions_ +=
        static_cast<std::uint64_t>(count) - (initialized_ ? 0U : 1U);
    initialized_ = true;
}

std::uint64_t logic_sim64::read_bus(const std::vector<net_id>& nets,
                                    int lane) const
{
    assert(nets.size() <= 64);
    std::uint64_t out = 0;
    for (std::size_t i = 0; i < nets.size(); ++i) {
        out |= ((values_.at(nets[i]) >> lane) & 1ULL) << i;
    }
    return out;
}

std::uint64_t logic_sim64::total_toggles() const noexcept
{
    std::uint64_t total = 0;
    for (const std::uint64_t t : toggles_) {
        total += t;
    }
    return total;
}

double logic_sim64::switched_capacitance_ff(const tech_model& tech) const
{
    double total = 0.0;
    const auto& gates = nl_.gates();
    for (std::size_t i = 0; i < gates.size(); ++i) {
        if (toggles_[i] == 0) {
            continue;
        }
        total += static_cast<double>(toggles_[i])
                 * tech.gate_cap_ff(gates[i].kind);
    }
    return total;
}

void logic_sim64::reset_stats()
{
    std::fill(toggles_.begin(), toggles_.end(), 0);
    transitions_ = 0;
}

std::vector<bool>
find_static_gates(const netlist& nl,
                  const std::vector<std::pair<net_id, bool>>& tied)
{
    // Three-valued constant propagation: 0, 1, X (unknown).
    enum : std::uint8_t { v0 = 0, v1 = 1, vx = 2 };
    std::vector<std::uint8_t> val(nl.size(), vx);

    for (const auto& [id, value] : tied) {
        val.at(id) = value ? v1 : v0;
    }

    const auto& gates = nl.gates();
    for (std::size_t i = 0; i < gates.size(); ++i) {
        const gate& g = gates[i];
        if (g.kind == gate_kind::input) {
            continue; // stays as tied or X
        }
        if (g.kind == gate_kind::constant) {
            val[i] = g.aux ? v1 : v0;
            continue;
        }
        const auto a = [&] { return val[g.in0]; };
        const auto b = [&] { return val[g.in1]; };
        const auto c = [&] { return val[g.in2]; };
        std::uint8_t r = vx;
        switch (g.kind) {
        case gate_kind::buf:
            r = a();
            break;
        case gate_kind::not_g:
            r = a() == vx ? std::uint8_t{vx}
                          : static_cast<std::uint8_t>(a() ^ 1U);
            break;
        case gate_kind::and_g:
            if (a() == v0 || b() == v0) {
                r = v0;
            } else if (a() == v1 && b() == v1) {
                r = v1;
            }
            break;
        case gate_kind::nand_g:
            if (a() == v0 || b() == v0) {
                r = v1;
            } else if (a() == v1 && b() == v1) {
                r = v0;
            }
            break;
        case gate_kind::or_g:
            if (a() == v1 || b() == v1) {
                r = v1;
            } else if (a() == v0 && b() == v0) {
                r = v0;
            }
            break;
        case gate_kind::nor_g:
            if (a() == v1 || b() == v1) {
                r = v0;
            } else if (a() == v0 && b() == v0) {
                r = v1;
            }
            break;
        case gate_kind::xor_g:
            if (a() != vx && b() != vx) {
                r = a() ^ b();
            }
            break;
        case gate_kind::xnor_g:
            if (a() != vx && b() != vx) {
                r = (a() ^ b()) ^ 1U;
            }
            break;
        case gate_kind::and3_g:
            if (a() == v0 || b() == v0 || c() == v0) {
                r = v0;
            } else if (a() == v1 && b() == v1 && c() == v1) {
                r = v1;
            }
            break;
        case gate_kind::or3_g:
            if (a() == v1 || b() == v1 || c() == v1) {
                r = v1;
            } else if (a() == v0 && b() == v0 && c() == v0) {
                r = v0;
            }
            break;
        case gate_kind::mux_g:
            if (c() == v0) {
                r = a();
            } else if (c() == v1) {
                r = b();
            } else if (a() != vx && a() == b()) {
                r = a();
            }
            break;
        case gate_kind::maj_g: {
            int zeros = 0;
            int ones = 0;
            for (const std::uint8_t s : {a(), b(), c()}) {
                zeros += (s == v0);
                ones += (s == v1);
            }
            if (ones >= 2) {
                r = v1;
            } else if (zeros >= 2) {
                r = v0;
            }
            break;
        }
        default:
            break;
        }
        val[i] = r;
    }

    std::vector<bool> is_static(nl.size(), false);
    for (std::size_t i = 0; i < val.size(); ++i) {
        is_static[i] = (val[i] != vx);
    }
    return is_static;
}

} // namespace dvafs
