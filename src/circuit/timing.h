// Static timing analysis over the netlist DAG.
//
// Arrival times propagate in one topological pass (construction order).
// A gate contributes its delay only if it belongs to the *active cone* --
// gates that can still toggle given the current mode's tied-off inputs
// (see find_static_gates). This models multi-mode synthesis timing: in a
// low-precision mode the critical path is measured through the logic that
// actually switches, which is exactly the path the voltage scaling of
// DVAS/DVAFS exploits (paper Fig. 2b).

#pragma once

#include "circuit/logic_sim.h"
#include "circuit/netlist.h"
#include "circuit/tech.h"

#include <vector>

namespace dvafs {

struct timing_report {
    double critical_path_ps = 0.0;
    net_id endpoint = no_net;        // gate where the worst path ends
    std::size_t active_gates = 0;    // gates in the active cone
    std::vector<double> arrival_ps;  // per-net arrival time
};

class timing_analyzer {
public:
    timing_analyzer(const netlist& nl, const tech_model& tech)
        : nl_(nl), tech_(tech)
    {
    }

    // Full-netlist timing at voltage `vdd` (all gates active).
    timing_report analyze(double vdd) const;

    // Mode-aware timing: gates whose output is constant under `tied` do not
    // propagate arrivals (their outputs are stable before the clock edge).
    timing_report
    analyze_mode(double vdd,
                 const std::vector<std::pair<net_id, bool>>& tied) const;

    // Positive slack for a clock period `period_ps` in the given mode.
    double slack_ps(double period_ps, double vdd,
                    const std::vector<std::pair<net_id, bool>>& tied) const;

    // Number of *endpoint* nets (registered outputs of the netlist) whose
    // arrival exceeds the clock period at the given supply -- the timing
    // violations that DVAS/DVAFS voltage selection must avoid ("without
    // inducing timing errors", paper Sec. II-B). Zero at any voltage at or
    // above the vf solution for this mode's critical path.
    std::size_t
    violations(double period_ps, double vdd,
               const std::vector<std::pair<net_id, bool>>& tied) const;

private:
    timing_report run(double vdd, const std::vector<bool>* is_static) const;

    const netlist& nl_;
    const tech_model& tech_;
};

} // namespace dvafs
