// The NEON backend (aarch64 baseline; no extra compile flags needed).
// On non-ARM builds the guard fails and the TU degrades to a nullptr
// table.

#include "vec/backend_prelude.h"

namespace dvafs::vec {
namespace neon {

#if defined(__ARM_NEON)

#define DVAFS_VEC_BACKEND_STRING "neon"
#define DVAFS_VEC_BACKEND_LEVEL ::dvafs::vec::isa::neon

#include "vec/ops_neon.h"     // NOLINT(bugprone-suspicious-include)
#include "vec/ops_scalar.h"   // NOLINT(bugprone-suspicious-include)
#include "vec/kernels_body.h" // NOLINT(bugprone-suspicious-include)

#else

const kernel_table* table() noexcept
{
    return nullptr;
}

#endif

} // namespace neon
} // namespace dvafs::vec
