// The AVX-512 backend (F+BW+VL+VPOPCNTDQ). CMake compiles this TU with
// the matching -m flags when the compiler has them; otherwise the guard
// fails and the TU degrades to a nullptr table. The overlay stack is
// ops_avx512.h over ops_avx2.h over the scalar fallback: AVX-512 only
// re-overlays the ops where 512-bit vectors or vpopcntq actually win
// (toggle kernel, masked popcount, float tile, int8 dot); the rest reuse
// the AVX2 definitions recompiled under this TU's flags.

#include "vec/backend_prelude.h"

// GCC 12 false positive (PR105593): every maskless AVX-512 intrinsic
// passes a _mm512_undefined_*() operand (self-initialized `__Y = __Y` in
// the vendor header) that the inliner reports as maybe-uninitialized at
// -O2. The operand is dead by construction; silence the class for this
// one TU rather than dropping -Werror.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wuninitialized"
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

namespace dvafs::vec {
namespace avx512 {

#if defined(__AVX512F__) && defined(__AVX512BW__) && defined(__AVX512VL__) \
    && defined(__AVX512VPOPCNTDQ__)

#define DVAFS_VEC_BACKEND_STRING "avx512"
#define DVAFS_VEC_BACKEND_LEVEL ::dvafs::vec::isa::avx512

#include "vec/ops_avx512.h"   // NOLINT(bugprone-suspicious-include)
#include "vec/ops_avx2.h"     // NOLINT(bugprone-suspicious-include)
#include "vec/ops_scalar.h"   // NOLINT(bugprone-suspicious-include)
#include "vec/kernels_body.h" // NOLINT(bugprone-suspicious-include)

#else

const kernel_table* table() noexcept
{
    return nullptr;
}

#endif

} // namespace avx512
} // namespace dvafs::vec
