// The AVX2 backend. CMake compiles this TU with -mavx2 -mpopcnt when the
// compiler supports them; on other compilers or architectures __AVX2__ is
// absent and the TU degrades to a nullptr table (the dispatcher then
// never offers this level). Runtime selection additionally requires the
// CPU to report AVX2 -- the ISA-specific code below never executes on a
// host without it.

#include "vec/backend_prelude.h"

namespace dvafs::vec {
namespace avx2 {

#if defined(__AVX2__)

#define DVAFS_VEC_BACKEND_STRING "avx2"
#define DVAFS_VEC_BACKEND_LEVEL ::dvafs::vec::isa::avx2

#include "vec/ops_avx2.h"     // NOLINT(bugprone-suspicious-include)
#include "vec/ops_scalar.h"   // NOLINT(bugprone-suspicious-include)
#include "vec/kernels_body.h" // NOLINT(bugprone-suspicious-include)

#else

const kernel_table* table() noexcept
{
    return nullptr;
}

#endif

} // namespace avx2
} // namespace dvafs::vec
