// The scalar backend: ops_scalar.h alone (no overlays), compiled at the
// build's baseline flags. This is the reference every other backend must
// match bit for bit, and the table DVAFS_FORCE_ISA=scalar pins.

#include "vec/backend_prelude.h"

namespace dvafs::vec {
namespace scalar {

#define DVAFS_VEC_BACKEND_STRING "scalar"
#define DVAFS_VEC_BACKEND_LEVEL ::dvafs::vec::isa::scalar

#include "vec/ops_scalar.h"   // NOLINT(bugprone-suspicious-include)
#include "vec/kernels_body.h" // NOLINT(bugprone-suspicious-include)

} // namespace scalar
} // namespace dvafs::vec
