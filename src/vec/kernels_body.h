// Generic kernel drivers, written once against the op vocabulary and
// compiled once per backend TU.
//
// A backend TU includes (in order, at global scope then inside its
// namespace):
//
//     #include "vec/backend_prelude.h"
//     namespace dvafs::vec::<backend> {
//     #include "vec/ops_<isa>.h"     // zero or more overlays, best first
//     #include "vec/ops_scalar.h"    // fallback completes the vocabulary
//     #include "vec/kernels_body.h"  // this file
//     }
//
// with DVAFS_VEC_BACKEND_STRING / DVAFS_VEC_BACKEND_LEVEL defined to the
// backend's name literal and isa enumerator. Everything here lives in the
// backend's namespace and references the vocabulary unqualified, so each
// backend gets its own fully-specialized copy under its own compile
// flags. No shared templates are instantiated with shared types (see
// backend_prelude.h for why); in particular gemm blocking avoids
// std::min and eval_gate_kind is instantiated with the local `bword`.

// -- gate-run executor --------------------------------------------------------

// Local one-word wrapper so eval_gate_kind's instantiation is unique to
// this backend (dvafs::eval_gate_kind<dvafs::vec::<backend>::bword>).
struct bword {
    std::uint64_t v;
};
inline constexpr bword operator&(bword a, bword b) noexcept
{
    return {a.v & b.v};
}
inline constexpr bword operator|(bword a, bword b) noexcept
{
    return {a.v | b.v};
}
inline constexpr bword operator^(bword a, bword b) noexcept
{
    return {a.v ^ b.v};
}

// One kind-homogeneous run at compile-time kind K and width W: the truth
// table folds to straight-line bitwise ops, the W-word loop vectorizes
// under this TU's flags, and the fused toggle popcount comes from the
// overlay. Mirrors (bit-exactly) the pre-vec compiled_sim<W>::exec_run.
template <int W, ::dvafs::gate_kind K>
void run_kind(const gate_run_args& g)
{
    std::uint64_t* const v = g.values;
    const std::uint32_t* const i0 = g.in0;
    const std::uint32_t* const i1 = g.in1;
    const std::uint32_t* const i2 = g.in2;
    constexpr bword ones{~0ULL};
    for (std::uint32_t i = g.begin; i < g.end; ++i) {
        const std::uint64_t* const a =
            v + static_cast<std::size_t>(i0[i]) * W;
        const std::uint64_t* const b =
            v + static_cast<std::size_t>(i1[i]) * W;
        const std::uint64_t* const c =
            v + static_cast<std::size_t>(i2[i]) * W;
        std::uint64_t* const out = v + static_cast<std::size_t>(i) * W;
        std::uint64_t r[W];
        for (int q = 0; q < W; ++q) {
            r[q] = ::dvafs::eval_gate_kind<bword>(K, bword{a[q]},
                                                  bword{b[q]}, bword{c[q]},
                                                  ones)
                       .v;
        }
        for (int q = 0; q < W; ++q) {
            out[q] = r[q];
        }
        g.toggles[i] += shift_transitions(r, g.toggle_mask, W, g.last[i]);
        g.last[i] = static_cast<std::uint8_t>(
            (r[g.last_word] >> g.last_bit) & 1ULL);
    }
}

template <int W>
void exec_gates(const gate_run_args& g)
{
    using ::dvafs::gate_kind;
    switch (static_cast<gate_kind>(g.kind)) {
    case gate_kind::buf: run_kind<W, gate_kind::buf>(g); break;
    case gate_kind::not_g: run_kind<W, gate_kind::not_g>(g); break;
    case gate_kind::and_g: run_kind<W, gate_kind::and_g>(g); break;
    case gate_kind::or_g: run_kind<W, gate_kind::or_g>(g); break;
    case gate_kind::xor_g: run_kind<W, gate_kind::xor_g>(g); break;
    case gate_kind::nand_g: run_kind<W, gate_kind::nand_g>(g); break;
    case gate_kind::nor_g: run_kind<W, gate_kind::nor_g>(g); break;
    case gate_kind::xnor_g: run_kind<W, gate_kind::xnor_g>(g); break;
    case gate_kind::and3_g: run_kind<W, gate_kind::and3_g>(g); break;
    case gate_kind::or3_g: run_kind<W, gate_kind::or3_g>(g); break;
    case gate_kind::mux_g: run_kind<W, gate_kind::mux_g>(g); break;
    case gate_kind::maj_g: run_kind<W, gate_kind::maj_g>(g); break;
    case gate_kind::input:
    case gate_kind::constant:
        break; // unreachable: compiled_sim rejects these before dispatch
    }
}

// -- GEMM blocking drivers ----------------------------------------------------

// Float edge tile (mb <= 4, nb <= 8, runtime trips). Identical arithmetic
// across backends: per-element double mul/add with k ascending -- lane
// order never changes per-element op sequences, so autovectorization
// under any flags keeps it bit-identical.
inline void f32_edge(const float* a, const float* b, const float* bias,
                     float* c, std::size_t k, std::size_t n, std::size_t m0,
                     std::size_t n0, std::size_t mb, std::size_t nb)
{
    double acc[4][8];
    for (std::size_t i = 0; i < mb; ++i) {
        const double init =
            bias != nullptr ? static_cast<double>(bias[m0 + i]) : 0.0;
        for (std::size_t j = 0; j < nb; ++j) {
            acc[i][j] = init;
        }
    }
    for (std::size_t r = 0; r < k; ++r) {
        const float* brow = b + r * n + n0;
        for (std::size_t i = 0; i < mb; ++i) {
            const double av = static_cast<double>(a[(m0 + i) * k + r]);
            for (std::size_t j = 0; j < nb; ++j) {
                acc[i][j] += av * static_cast<double>(brow[j]);
            }
        }
    }
    for (std::size_t i = 0; i < mb; ++i) {
        float* crow = c + (m0 + i) * n + n0;
        for (std::size_t j = 0; j < nb; ++j) {
            crow[j] = static_cast<float>(acc[i][j]);
        }
    }
}

inline void gemm_f32_impl(const float* a, const float* b,
                          const float* bias, float* c, std::size_t m,
                          std::size_t k, std::size_t n)
{
    for (std::size_t m0 = 0; m0 < m; m0 += 4) {
        const std::size_t mb = m - m0 < 4 ? m - m0 : 4;
        std::size_t n0 = 0;
        if (mb == 4) {
            for (; n0 + 8 <= n; n0 += 8) {
                f32_tile(a, b, bias, c, k, n, m0, n0);
            }
        }
        for (; n0 < n; n0 += 8) {
            const std::size_t nb = n - n0 < 8 ? n - n0 : 8;
            f32_edge(a, b, bias, c, k, n, m0, n0, mb, nb);
        }
    }
}

// Int8 edge tile (exact int32; any order matches).
inline void s8_edge(const std::int8_t* a, const std::int8_t* b,
                    const std::int32_t* bias, std::int32_t* c,
                    std::size_t k, std::size_t n, std::size_t m0,
                    std::size_t n0, std::size_t mb, std::size_t nb)
{
    std::int32_t acc[4][16];
    for (std::size_t i = 0; i < mb; ++i) {
        const std::int32_t init = bias != nullptr ? bias[m0 + i] : 0;
        for (std::size_t j = 0; j < nb; ++j) {
            acc[i][j] = init;
        }
    }
    for (std::size_t r = 0; r < k; ++r) {
        const std::int8_t* brow = b + r * n + n0;
        for (std::size_t i = 0; i < mb; ++i) {
            const std::int32_t av =
                static_cast<std::int32_t>(a[(m0 + i) * k + r]);
            for (std::size_t j = 0; j < nb; ++j) {
                acc[i][j] += av * static_cast<std::int32_t>(brow[j]);
            }
        }
    }
    for (std::size_t i = 0; i < mb; ++i) {
        std::int32_t* crow = c + (m0 + i) * n + n0;
        for (std::size_t j = 0; j < nb; ++j) {
            crow[j] = acc[i][j];
        }
    }
}

inline void gemm_s8_impl(const std::int8_t* a, const std::int8_t* b,
                         const std::int32_t* bias, std::int32_t* c,
                         std::size_t m, std::size_t k, std::size_t n)
{
    if (n == 1) {
        // The fc shape: every output is a contiguous-by-contiguous dot,
        // where the k-vectorized widening MAC kernels shine.
        for (std::size_t i = 0; i < m; ++i) {
            c[i] = (bias != nullptr ? bias[i] : 0) + s8_dot(a + i * k, b, k);
        }
        return;
    }
    for (std::size_t m0 = 0; m0 < m; m0 += 4) {
        const std::size_t mb = m - m0 < 4 ? m - m0 : 4;
        std::size_t n0 = 0;
        if (mb == 4) {
            for (; n0 + 16 <= n; n0 += 16) {
                s8_ctile(a, b, bias, c, k, n, m0, n0);
            }
        }
        for (; n0 < n; n0 += 16) {
            const std::size_t nb = n - n0 < 16 ? n - n0 : 16;
            s8_edge(a, b, bias, c, k, n, m0, n0, mb, nb);
        }
    }
}

// Int16 blocked path (exact int64 accumulation). Only the n == 1 dot has
// a dedicated overlay op; the column path is the generic tile, which this
// TU's flags may autovectorize -- still exact, still bit-identical.
inline void s16_tile(const std::int16_t* a, const std::int16_t* b,
                     const std::int64_t* bias, std::int64_t* c,
                     std::size_t k, std::size_t n, std::size_t m0,
                     std::size_t n0, std::size_t mb, std::size_t nb)
{
    std::int64_t acc[4][8];
    for (std::size_t i = 0; i < mb; ++i) {
        const std::int64_t init = bias != nullptr ? bias[m0 + i] : 0;
        for (std::size_t j = 0; j < nb; ++j) {
            acc[i][j] = init;
        }
    }
    for (std::size_t r = 0; r < k; ++r) {
        const std::int16_t* brow = b + r * n + n0;
        for (std::size_t i = 0; i < mb; ++i) {
            const std::int64_t av =
                static_cast<std::int64_t>(a[(m0 + i) * k + r]);
            for (std::size_t j = 0; j < nb; ++j) {
                acc[i][j] += av * static_cast<std::int64_t>(brow[j]);
            }
        }
    }
    for (std::size_t i = 0; i < mb; ++i) {
        std::int64_t* crow = c + (m0 + i) * n + n0;
        for (std::size_t j = 0; j < nb; ++j) {
            crow[j] = acc[i][j];
        }
    }
}

inline void gemm_s16_impl(const std::int16_t* a, const std::int16_t* b,
                          const std::int64_t* bias, std::int64_t* c,
                          std::size_t m, std::size_t k, std::size_t n)
{
    if (n == 1) {
        for (std::size_t i = 0; i < m; ++i) {
            c[i] =
                (bias != nullptr ? bias[i] : 0) + s16_dot(a + i * k, b, k);
        }
        return;
    }
    for (std::size_t m0 = 0; m0 < m; m0 += 4) {
        const std::size_t mb = m - m0 < 4 ? m - m0 : 4;
        for (std::size_t n0 = 0; n0 < n; n0 += 8) {
            const std::size_t nb = n - n0 < 8 ? n - n0 : 8;
            s16_tile(a, b, bias, c, k, n, m0, n0, mb, nb);
        }
    }
}

// -- the backend's table ------------------------------------------------------

inline constexpr kernel_table k_table = {
    DVAFS_VEC_BACKEND_STRING,
    static_cast<int>(DVAFS_VEC_BACKEND_LEVEL),
    &masked_popcount,
    &shift_transitions,
    &transpose64,
    &exec_gates<1>,
    &exec_gates<4>,
    &exec_gates<8>,
    &gemm_f32_impl,
    &gemm_s8_impl,
    &gemm_s16_impl,
};

const kernel_table* table() noexcept
{
    return &k_table;
}
