// AVX2 overlay: 256-bit definitions for the vocabulary ops that profit.
//
// Included inside a backend namespace (backend_avx2.cpp, and again under
// backend_avx512.cpp's namespace for the ops AVX-512 does not re-overlay);
// no #includes here -- intrinsics come from vec/backend_prelude.h. Every
// op is bit-identical to the ops_scalar.h fallback: bitwise kernels by
// construction, the float tile by replicating the exact per-element
// mul/add sequence in double, the integer kernels because exact integer
// accumulation is order-free.

#ifndef DVAFS_VEC_HAVE_MASKED_POPCOUNT
#define DVAFS_VEC_HAVE_MASKED_POPCOUNT 1
// Harley-Seal-free nibble-LUT popcount: pshufb on both nibbles, psadbw
// against zero to sum bytes per qword.
inline std::uint64_t masked_popcount(const std::uint64_t* x,
                                     const std::uint64_t* m, int n)
{
    const __m256i lut = _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2,
                                         3, 2, 3, 3, 4, 0, 1, 1, 2, 1, 2,
                                         2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
    const __m256i low4 = _mm256_set1_epi8(0x0f);
    __m256i acc = _mm256_setzero_si256();
    int k = 0;
    for (; k + 4 <= n; k += 4) {
        const __m256i v = _mm256_and_si256(
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + k)),
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(m + k)));
        const __m256i lo =
            _mm256_shuffle_epi8(lut, _mm256_and_si256(v, low4));
        const __m256i hi = _mm256_shuffle_epi8(
            lut, _mm256_and_si256(_mm256_srli_epi16(v, 4), low4));
        acc = _mm256_add_epi64(
            acc, _mm256_sad_epu8(_mm256_add_epi8(lo, hi),
                                 _mm256_setzero_si256()));
    }
    const __m128i s = _mm_add_epi64(_mm256_castsi256_si128(acc),
                                    _mm256_extracti128_si256(acc, 1));
    std::uint64_t total =
        static_cast<std::uint64_t>(_mm_cvtsi128_si64(s))
        + static_cast<std::uint64_t>(_mm_extract_epi64(s, 1));
    for (; k < n; ++k) {
        total += static_cast<std::uint64_t>(
            __builtin_popcountll(x[k] & m[k]));
    }
    return total;
}
#endif

#ifndef DVAFS_VEC_HAVE_SHIFT_TRANSITIONS
#define DVAFS_VEC_HAVE_SHIFT_TRANSITIONS 1
// Fused toggle kernel: the lane shift is a qword rotation with the carry
// blended into lane 0, the popcount the same nibble-LUT + psadbw.
inline std::uint64_t shift_transitions(const std::uint64_t* cur,
                                       const std::uint64_t* mask, int n,
                                       std::uint64_t carry_in)
{
    const __m256i lut = _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2,
                                         3, 2, 3, 3, 4, 0, 1, 1, 2, 1, 2,
                                         2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
    const __m256i low4 = _mm256_set1_epi8(0x0f);
    __m256i acc = _mm256_setzero_si256();
    std::uint64_t carry = carry_in;
    int k = 0;
    for (; k + 4 <= n; k += 4) {
        const __m256i w = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(cur + k));
        const __m256i mk = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(mask + k));
        // prev = [carry<<63, w0, w1, w2]: each qword's left neighbour, so
        // (prev >> 63) is the bit shifted into each qword's bit 0.
        const __m256i rot = _mm256_permute4x64_epi64(w, 0x90);
        const __m256i prev = _mm256_blend_epi32(
            rot, _mm256_set1_epi64x(static_cast<long long>(carry << 63)),
            0x03);
        carry = cur[k + 3] >> 63;
        const __m256i shifted = _mm256_or_si256(
            _mm256_slli_epi64(w, 1), _mm256_srli_epi64(prev, 63));
        const __m256i x =
            _mm256_and_si256(_mm256_xor_si256(w, shifted), mk);
        const __m256i lo =
            _mm256_shuffle_epi8(lut, _mm256_and_si256(x, low4));
        const __m256i hi = _mm256_shuffle_epi8(
            lut, _mm256_and_si256(_mm256_srli_epi16(x, 4), low4));
        acc = _mm256_add_epi64(
            acc, _mm256_sad_epu8(_mm256_add_epi8(lo, hi),
                                 _mm256_setzero_si256()));
    }
    const __m128i s = _mm_add_epi64(_mm256_castsi256_si128(acc),
                                    _mm256_extracti128_si256(acc, 1));
    std::uint64_t total =
        static_cast<std::uint64_t>(_mm_cvtsi128_si64(s))
        + static_cast<std::uint64_t>(_mm_extract_epi64(s, 1));
    for (; k < n; ++k) {
        const std::uint64_t shifted = (cur[k] << 1) | carry;
        carry = cur[k] >> 63;
        total += static_cast<std::uint64_t>(
            __builtin_popcountll((cur[k] ^ shifted) & mask[k]));
    }
    return total;
}
#endif

#ifndef DVAFS_VEC_HAVE_TRANSPOSE64
#define DVAFS_VEC_HAVE_TRANSPOSE64 1
// One masked-exchange round at stride J >= 4: partner rows are J apart and
// the row indices with bit J clear come in runs of J, so four exchanges
// happen per vector op. Bitwise-identical to the scalar network round.
template <int J>
inline void transpose64_round(std::uint64_t* x, std::uint64_t m)
{
    static_assert(J >= 4 && (J & (J - 1)) == 0);
    const __m256i mm = _mm256_set1_epi64x(static_cast<long long>(m));
    for (int base = 0; base < 64; base += 2 * J) {
        for (int k = base; k < base + J; k += 4) {
            __m256i lo = _mm256_loadu_si256(
                reinterpret_cast<const __m256i*>(x + k));
            __m256i hi = _mm256_loadu_si256(
                reinterpret_cast<const __m256i*>(x + k + J));
            const __m256i t = _mm256_and_si256(
                _mm256_xor_si256(_mm256_srli_epi64(lo, J), hi), mm);
            lo = _mm256_xor_si256(lo, _mm256_slli_epi64(t, J));
            hi = _mm256_xor_si256(hi, t);
            _mm256_storeu_si256(reinterpret_cast<__m256i*>(x + k), lo);
            _mm256_storeu_si256(reinterpret_cast<__m256i*>(x + k + J), hi);
        }
    }
}

inline void transpose64(std::uint64_t x[64])
{
    transpose64_round<32>(x, 0x00000000FFFFFFFFULL);
    transpose64_round<16>(x, 0x0000FFFF0000FFFFULL);
    transpose64_round<8>(x, 0x00FF00FF00FF00FFULL);
    transpose64_round<4>(x, 0x0F0F0F0F0F0F0F0FULL);
    // Strides 2 and 1 exchange within a 4-row vector; scalar rounds.
    std::uint64_t m = 0x3333333333333333ULL;
    for (int j = 2; j != 0; j >>= 1, m ^= m << j) {
        for (int k = 0; k < 64; k = (k + j + 1) & ~j) {
            const std::uint64_t t = ((x[k] >> j) ^ x[k + j]) & m;
            x[k] ^= t << j;
            x[k + j] ^= t;
        }
    }
}
#endif

#ifndef DVAFS_VEC_HAVE_F32_TILE
#define DVAFS_VEC_HAVE_F32_TILE 1
// 4x8 tile, two 4-double accumulators per row. Same per-element op
// sequence as the scalar tile: widen to double, multiply, add, k
// ascending -- vcvtps2pd/vmulpd/vaddpd are the IEEE-exact vector forms of
// exactly those scalar ops (no FMA; the build sets -ffp-contract=off so
// the scalar side cannot fuse either).
inline void f32_tile(const float* a, const float* b, const float* bias,
                     float* c, std::size_t k, std::size_t n, std::size_t m0,
                     std::size_t n0)
{
    __m256d acc0[4];
    __m256d acc1[4];
    for (std::size_t i = 0; i < 4; ++i) {
        const double init =
            bias != nullptr ? static_cast<double>(bias[m0 + i]) : 0.0;
        acc0[i] = _mm256_set1_pd(init);
        acc1[i] = _mm256_set1_pd(init);
    }
    for (std::size_t r = 0; r < k; ++r) {
        const float* brow = b + r * n + n0;
        const __m256d bd0 = _mm256_cvtps_pd(_mm_loadu_ps(brow));
        const __m256d bd1 = _mm256_cvtps_pd(_mm_loadu_ps(brow + 4));
        for (std::size_t i = 0; i < 4; ++i) {
            const __m256d av = _mm256_set1_pd(
                static_cast<double>(a[(m0 + i) * k + r]));
            acc0[i] = _mm256_add_pd(acc0[i], _mm256_mul_pd(av, bd0));
            acc1[i] = _mm256_add_pd(acc1[i], _mm256_mul_pd(av, bd1));
        }
    }
    for (std::size_t i = 0; i < 4; ++i) {
        float* crow = c + (m0 + i) * n + n0;
        _mm_storeu_ps(crow, _mm256_cvtpd_ps(acc0[i]));
        _mm_storeu_ps(crow + 4, _mm256_cvtpd_ps(acc1[i]));
    }
}
#endif

#ifndef DVAFS_VEC_HAVE_S8_DOT
#define DVAFS_VEC_HAVE_S8_DOT 1
// Widen to int16 and vpmaddwd: 16 MACs per step, exact (int8 products fit
// int16 pairs in int32 with no saturation corner -- the 0x8000*0x8000
// pmaddwd case is unreachable from int8 inputs). Per-lane accumulation
// stays below 2^31 under the k <= 66571 contract.
inline std::int32_t s8_dot(const std::int8_t* x, const std::int8_t* y,
                           std::size_t k)
{
    __m256i acc = _mm256_setzero_si256();
    std::size_t r = 0;
    for (; r + 16 <= k; r += 16) {
        const __m256i xv = _mm256_cvtepi8_epi16(_mm_loadu_si128(
            reinterpret_cast<const __m128i*>(x + r)));
        const __m256i yv = _mm256_cvtepi8_epi16(_mm_loadu_si128(
            reinterpret_cast<const __m128i*>(y + r)));
        acc = _mm256_add_epi32(acc, _mm256_madd_epi16(xv, yv));
    }
    __m128i s = _mm_add_epi32(_mm256_castsi256_si128(acc),
                              _mm256_extracti128_si256(acc, 1));
    s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0x4E));
    s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0xB1));
    std::int32_t total = _mm_cvtsi128_si32(s);
    for (; r < k; ++r) {
        total += static_cast<std::int32_t>(x[r])
                 * static_cast<std::int32_t>(y[r]);
    }
    return total;
}
#endif

#ifndef DVAFS_VEC_HAVE_S8_CTILE
#define DVAFS_VEC_HAVE_S8_CTILE 1
// 4x16 int8 tile: two B k-rows are widened to int16 and interleaved once
// (shared by all four A rows), then one vpmaddwd per row computes
// a0*b0[j] + a1*b1[j] for 8 columns at a time. Unpack works per 128-bit
// lane, so the low accumulator holds columns {0-3, 8-11} and the high one
// {4-7, 12-15}; a permute2x128 on store restores column order.
inline void s8_ctile(const std::int8_t* a, const std::int8_t* b,
                     const std::int32_t* bias, std::int32_t* c,
                     std::size_t k, std::size_t n, std::size_t m0,
                     std::size_t n0)
{
    __m256i accl[4];
    __m256i acch[4];
    for (std::size_t i = 0; i < 4; ++i) {
        const __m256i init =
            _mm256_set1_epi32(bias != nullptr ? bias[m0 + i] : 0);
        accl[i] = init;
        acch[i] = init;
    }
    std::size_t r = 0;
    for (; r + 2 <= k; r += 2) {
        const __m256i b0 = _mm256_cvtepi8_epi16(_mm_loadu_si128(
            reinterpret_cast<const __m128i*>(b + r * n + n0)));
        const __m256i b1 = _mm256_cvtepi8_epi16(_mm_loadu_si128(
            reinterpret_cast<const __m128i*>(b + (r + 1) * n + n0)));
        const __m256i pl = _mm256_unpacklo_epi16(b0, b1);
        const __m256i ph = _mm256_unpackhi_epi16(b0, b1);
        for (std::size_t i = 0; i < 4; ++i) {
            const std::int32_t a0 = a[(m0 + i) * k + r];
            const std::int32_t a1 = a[(m0 + i) * k + r + 1];
            const __m256i ap = _mm256_set1_epi32(
                (a1 << 16) | (a0 & 0xFFFF));
            accl[i] = _mm256_add_epi32(accl[i], _mm256_madd_epi16(pl, ap));
            acch[i] = _mm256_add_epi32(acch[i], _mm256_madd_epi16(ph, ap));
        }
    }
    if (r < k) { // odd k: pair the last row with zero
        const __m256i b0 = _mm256_cvtepi8_epi16(_mm_loadu_si128(
            reinterpret_cast<const __m128i*>(b + r * n + n0)));
        const __m256i zero = _mm256_setzero_si256();
        const __m256i pl = _mm256_unpacklo_epi16(b0, zero);
        const __m256i ph = _mm256_unpackhi_epi16(b0, zero);
        for (std::size_t i = 0; i < 4; ++i) {
            const std::int32_t a0 = a[(m0 + i) * k + r];
            const __m256i ap = _mm256_set1_epi32(a0 & 0xFFFF);
            accl[i] = _mm256_add_epi32(accl[i], _mm256_madd_epi16(pl, ap));
            acch[i] = _mm256_add_epi32(acch[i], _mm256_madd_epi16(ph, ap));
        }
    }
    for (std::size_t i = 0; i < 4; ++i) {
        std::int32_t* crow = c + (m0 + i) * n + n0;
        _mm256_storeu_si256(
            reinterpret_cast<__m256i*>(crow),
            _mm256_permute2x128_si256(accl[i], acch[i], 0x20));
        _mm256_storeu_si256(
            reinterpret_cast<__m256i*>(crow + 8),
            _mm256_permute2x128_si256(accl[i], acch[i], 0x31));
    }
}
#endif

#ifndef DVAFS_VEC_HAVE_S16_DOT
#define DVAFS_VEC_HAVE_S16_DOT 1
// Widen int16 -> int32, exact vpmulld products (<= 2^30), then widen to
// int64 for accumulation.
inline std::int64_t s16_dot(const std::int16_t* x, const std::int16_t* y,
                            std::size_t k)
{
    __m256i acc = _mm256_setzero_si256(); // 4 x int64
    std::size_t r = 0;
    for (; r + 8 <= k; r += 8) {
        const __m256i xv = _mm256_cvtepi16_epi32(_mm_loadu_si128(
            reinterpret_cast<const __m128i*>(x + r)));
        const __m256i yv = _mm256_cvtepi16_epi32(_mm_loadu_si128(
            reinterpret_cast<const __m128i*>(y + r)));
        const __m256i p = _mm256_mullo_epi32(xv, yv);
        acc = _mm256_add_epi64(
            acc, _mm256_cvtepi32_epi64(_mm256_castsi256_si128(p)));
        acc = _mm256_add_epi64(
            acc, _mm256_cvtepi32_epi64(_mm256_extracti128_si256(p, 1)));
    }
    const __m128i s = _mm_add_epi64(_mm256_castsi256_si128(acc),
                                    _mm256_extracti128_si256(acc, 1));
    std::int64_t total = _mm_cvtsi128_si64(s)
                         + _mm_extract_epi64(s, 1);
    for (; r < k; ++r) {
        total += static_cast<std::int64_t>(x[r])
                 * static_cast<std::int64_t>(y[r]);
    }
    return total;
}
#endif
