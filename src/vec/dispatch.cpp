// Runtime backend selection (see vec/vec.h for the model).
//
// Compiled at baseline flags -- this TU must run on any host. Backend
// availability is the AND of two gates: the backend TU compiled real code
// (its table() is non-null) and the running CPU reports the ISA
// (__builtin_cpu_supports). The active table is a single atomic pointer;
// first use resolves DVAFS_FORCE_ISA.

#include "vec/vec.h"

#include <atomic>
#include <cstdlib>
#include <iostream>

namespace dvafs::vec {

namespace {

const kernel_table* compiled_table(isa level) noexcept
{
    switch (level) {
    case isa::scalar: return scalar::table();
    case isa::neon: return neon::table();
    case isa::avx2: return avx2::table();
    case isa::avx512: return avx512::table();
    }
    return nullptr;
}

bool cpu_supports(isa level) noexcept
{
    switch (level) {
    case isa::scalar:
        return true;
#if defined(__x86_64__) || defined(__i386__)
    case isa::neon:
        return false;
    case isa::avx2:
        return __builtin_cpu_supports("avx2") != 0;
    case isa::avx512:
        return __builtin_cpu_supports("avx512f") != 0
               && __builtin_cpu_supports("avx512bw") != 0
               && __builtin_cpu_supports("avx512vl") != 0
               && __builtin_cpu_supports("avx512vpopcntdq") != 0;
#else
    case isa::neon:
        // A neon table only compiles on ARM builds, where NEON is part of
        // the aarch64 baseline.
        return true;
    case isa::avx2:
    case isa::avx512:
        return false;
#endif
    }
    return false;
}

// Non-null iff the backend is compiled in AND the CPU supports it.
const kernel_table* usable_table(isa level) noexcept
{
    return cpu_supports(level) ? compiled_table(level) : nullptr;
}

const kernel_table* best_table() noexcept
{
    for (const isa level : {isa::avx512, isa::avx2, isa::neon}) {
        if (const kernel_table* t = usable_table(level)) {
            return t;
        }
    }
    return scalar::table();
}

std::atomic<const kernel_table*> g_active{nullptr};

} // namespace

const char* isa_name(isa level) noexcept
{
    switch (level) {
    case isa::scalar: return "scalar";
    case isa::neon: return "neon";
    case isa::avx2: return "avx2";
    case isa::avx512: return "avx512";
    }
    return "?";
}

bool parse_isa(const std::string& name, isa& out) noexcept
{
    for (const isa level :
         {isa::scalar, isa::neon, isa::avx2, isa::avx512}) {
        if (name == isa_name(level)) {
            out = level;
            return true;
        }
    }
    return false;
}

std::vector<isa> available()
{
    std::vector<isa> out;
    for (const isa level :
         {isa::scalar, isa::neon, isa::avx2, isa::avx512}) {
        if (usable_table(level) != nullptr) {
            out.push_back(level);
        }
    }
    return out;
}

const kernel_table* table_for(isa level) noexcept
{
    return usable_table(level);
}

bool force_isa(isa level)
{
    const kernel_table* t = usable_table(level);
    if (t == nullptr) {
        return false;
    }
    g_active.store(t, std::memory_order_release);
    return true;
}

bool force_isa(const std::string& name)
{
    isa level{};
    return parse_isa(name, level) && force_isa(level);
}

isa refresh_from_env()
{
    const kernel_table* t = nullptr;
    if (const char* e = std::getenv("DVAFS_FORCE_ISA");
        e != nullptr && *e != '\0') {
        isa level{};
        if (!parse_isa(e, level)) {
            std::cerr << "dvafs: DVAFS_FORCE_ISA='" << e
                      << "' is not an ISA name "
                         "(scalar/neon/avx2/avx512); "
                         "using best available\n";
        } else if ((t = usable_table(level)) == nullptr) {
            std::cerr << "dvafs: DVAFS_FORCE_ISA=" << e
                      << " is not available on this host/build; "
                         "using best available\n";
        }
    }
    if (t == nullptr) {
        t = best_table();
    }
    g_active.store(t, std::memory_order_release);
    return static_cast<isa>(t->level);
}

const kernel_table& active()
{
    const kernel_table* t = g_active.load(std::memory_order_acquire);
    if (t == nullptr) {
        // Benign race: concurrent first users resolve the same table.
        refresh_from_env();
        t = g_active.load(std::memory_order_acquire);
    }
    return *t;
}

isa active_isa()
{
    return static_cast<isa>(active().level);
}

} // namespace dvafs::vec
