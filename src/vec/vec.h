// Host SIMD shim: one scalar source, per-ISA overlays, runtime dispatch.
//
// NOT the paper's SIMD. src/simd/ models the *hardware* SIMD processor the
// paper evaluates (subword-parallel MACs at scaled precision); src/vec/ is
// purely about making this simulator fast on the machine it runs on. The
// two never meet: vec changes wall-clock, never results.
//
// The layout follows the simdops/cardioid "null.hpp" pattern: one scalar
// fallback header (ops_scalar.h) defines the complete op vocabulary --
// masked popcount, the fused shift/xor/mask/popcount toggle kernel, the
// 64x64 bit transpose, the float GEMM register tile and the int8/int16
// widening multiply-accumulate kernels -- each op guarded by a
// DVAFS_VEC_HAVE_* macro. Per-ISA overlay headers (ops_avx2.h, ops_avx512.h,
// ops_neon.h) define some of those ops first and set the guards, so a
// backend translation unit stacks overlays over the scalar fallback and
// always ends up with the full vocabulary. The generic kernels in
// kernels_body.h (gate-run executor, GEMM blocking drivers) are written
// once against the vocabulary and compiled once per backend TU, each under
// its own namespace and its own -m<isa> compile flags (per-source CMake
// options -- the ISA-specific code never leaks into baseline TUs, so the
// binary stays runnable on a baseline host).
//
// Contract: every backend is bit-identical to the scalar overlay. Integer
// ops are exact, so any evaluation order is fine; the float tile must
// reproduce the scalar tile's operation sequence per output element
// (double accumulation, k ascending, separate mul and add -- the build
// sets -ffp-contract=off so no backend ever fuses). tests/test_vec.cpp
// enforces this differentially; the throughput benches re-check it on
// their own workloads before timing.
//
// Dispatch: active() returns the best table whose ISA the running CPU
// supports, overridable via the DVAFS_FORCE_ISA environment variable
// ("scalar", "neon", "avx2", "avx512") or force_isa() (the benches'
// --isa flag). Forcing an unavailable ISA from the environment warns and
// falls back to the best available one; force_isa() returns false.

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace dvafs::vec {

// ISA levels in preference order (higher wins in best-available pick).
enum class isa : int { scalar = 0, neon = 1, avx2 = 2, avx512 = 3 };

// One kind-homogeneous gate run over the compiled schedule's SoA arrays
// (see circuit/compiled_sim.h). `values` is the dense value array viewed
// as raw words, W words per net; gate i reads fanin blocks in0/in1/in2[i]
// and writes block i, accumulating the fused toggle popcount into
// toggles[i] and the final-lane carry into last[i].
struct gate_run_args {
    int kind = 0; // static_cast<int>(gate_kind), never input/constant
    const std::uint32_t* in0 = nullptr;
    const std::uint32_t* in1 = nullptr;
    const std::uint32_t* in2 = nullptr;
    std::uint32_t begin = 0;
    std::uint32_t end = 0;
    std::uint64_t* values = nullptr;         // net_count * W words
    std::uint64_t* toggles = nullptr;        // per dense net
    std::uint8_t* last = nullptr;            // per dense net
    const std::uint64_t* toggle_mask = nullptr; // W words
    int last_word = 0;
    int last_bit = 0;
};

// One backend's kernel set. Function pointers rather than virtuals: the
// table is a static const object per backend TU and dispatch is one atomic
// pointer load.
struct kernel_table {
    const char* name = nullptr; // "scalar" / "neon" / "avx2" / "avx512"
    int level = 0;              // static_cast<int>(isa)

    // popcount(x[i] & m[i]) summed over n words.
    std::uint64_t (*masked_popcount)(const std::uint64_t* x,
                                     const std::uint64_t* m, int n);
    // The toggle kernel: popcount((cur ^ ((cur << 1) | carry)) & mask)
    // across n words with the bit-63 carry chained word to word;
    // carry_in (0/1) enters bit 0 of word 0.
    std::uint64_t (*shift_transitions)(const std::uint64_t* cur,
                                       const std::uint64_t* mask, int n,
                                       std::uint64_t carry_in);
    // In-place 64x64 bit-matrix transpose (fixedpoint/bitops.h semantics).
    void (*transpose64)(std::uint64_t x[64]);
    // Gate-run executors for the compiled sim's three lane widths.
    void (*exec_gates_w1)(const gate_run_args& run);
    void (*exec_gates_w4)(const gate_run_args& run);
    void (*exec_gates_w8)(const gate_run_args& run);
    // Blocked GEMMs, C = bias + A(m x k) * B(k x n). Float keeps the
    // cnn/gemm.h accumulation contract; integer kernels are exact (int8
    // under the k <= 66571 int32 overflow contract of cnn/gemm_int.h).
    void (*gemm_f32)(const float* a, const float* b, const float* bias,
                     float* c, std::size_t m, std::size_t k, std::size_t n);
    void (*gemm_s8)(const std::int8_t* a, const std::int8_t* b,
                    const std::int32_t* bias, std::int32_t* c,
                    std::size_t m, std::size_t k, std::size_t n);
    void (*gemm_s16)(const std::int16_t* a, const std::int16_t* b,
                     const std::int64_t* bias, std::int64_t* c,
                     std::size_t m, std::size_t k, std::size_t n);
};

// Per-backend tables. A backend whose ISA the *build* cannot target
// (compiler too old, wrong architecture) returns nullptr; scalar is
// always present.
namespace scalar {
const kernel_table* table() noexcept;
}
namespace neon {
const kernel_table* table() noexcept;
}
namespace avx2 {
const kernel_table* table() noexcept;
}
namespace avx512 {
const kernel_table* table() noexcept;
}

// The dispatched table: best compiled-in backend the running CPU supports,
// or whatever DVAFS_FORCE_ISA / force_isa() pinned. First call reads the
// environment; thread-safe (one atomic pointer).
const kernel_table& active();
isa active_isa();

const char* isa_name(isa level) noexcept;
// Parses "scalar"/"neon"/"avx2"/"avx512"; false on anything else.
bool parse_isa(const std::string& name, isa& out) noexcept;

// Backends that are both compiled in and supported by the running CPU,
// lowest level first (always contains isa::scalar).
std::vector<isa> available();
// Table for one level, nullptr when not compiled in or not supported.
const kernel_table* table_for(isa level) noexcept;

// Pins dispatch to `level` (or its string name). Returns false -- leaving
// dispatch unchanged -- when the backend is unavailable or unknown.
bool force_isa(isa level);
bool force_isa(const std::string& name);
// Re-reads DVAFS_FORCE_ISA and re-picks (tests use this to exercise the
// override round-trip); an unset variable restores best-available. An
// unknown or unavailable value warns on stderr and falls back to best.
isa refresh_from_env();

} // namespace dvafs::vec
