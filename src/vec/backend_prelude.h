// Everything a backend TU includes at global scope, gathered in one place
// so the overlay headers and kernels_body.h can stay include-free (they
// are textually included *inside* the backend's namespace, where a
// #include of a system header would be ill-formed).
//
// Keep this list minimal and header-only-light on purpose: a backend TU
// is compiled with -m<isa> flags, and any shared inline function or
// template it instantiates becomes a weak symbol carrying ISA-specific
// code that the linker may select program-wide. gate_kinds.h is safe --
// the backends instantiate eval_gate_kind only with their own local word
// type, giving the instantiation a backend-unique mangled name.

#pragma once

#include "circuit/gate_kinds.h" // gate_kind + the shared truth table
#include "vec/vec.h"

#include <cstddef>
#include <cstdint>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#elif defined(__ARM_NEON)
#include <arm_neon.h>
#endif
