// Scalar fallback overlay: the complete op vocabulary, pure C++.
//
// This header is textually included *inside a backend namespace* by the
// backend TUs (see kernels_body.h), always last in the overlay stack, so
// it must not #include anything -- every external name it uses comes from
// vec/backend_prelude.h. Each op is guarded by its DVAFS_VEC_HAVE_* macro:
// an ISA overlay that already defined the op sets the guard and this
// fallback stays out. The fallback definitions ARE the reference the
// bit-identity contract in vec/vec.h is stated against.
//
// Deliberately uses __builtin_popcountll instead of std::popcount and a
// local copy of the transpose network instead of fixedpoint/bitops.h:
// referencing a cross-TU inline function from a TU compiled with -m<isa>
// flags would emit a weak symbol carrying ISA-specific code that the
// linker may then pick for the whole program (and crash baseline hosts).
// Everything a backend TU instantiates must be local to its namespace.

#ifndef DVAFS_VEC_HAVE_MASKED_POPCOUNT
#define DVAFS_VEC_HAVE_MASKED_POPCOUNT 1
inline std::uint64_t masked_popcount(const std::uint64_t* x,
                                     const std::uint64_t* m, int n)
{
    std::uint64_t total = 0;
    for (int k = 0; k < n; ++k) {
        total += static_cast<std::uint64_t>(
            __builtin_popcountll(x[k] & m[k]));
    }
    return total;
}
#endif

#ifndef DVAFS_VEC_HAVE_SHIFT_TRANSITIONS
#define DVAFS_VEC_HAVE_SHIFT_TRANSITIONS 1
inline std::uint64_t shift_transitions(const std::uint64_t* cur,
                                       const std::uint64_t* mask, int n,
                                       std::uint64_t carry_in)
{
    std::uint64_t total = 0;
    std::uint64_t carry = carry_in;
    for (int k = 0; k < n; ++k) {
        const std::uint64_t shifted = (cur[k] << 1) | carry;
        carry = cur[k] >> 63;
        total += static_cast<std::uint64_t>(
            __builtin_popcountll((cur[k] ^ shifted) & mask[k]));
    }
    return total;
}
#endif

#ifndef DVAFS_VEC_HAVE_TRANSPOSE64
#define DVAFS_VEC_HAVE_TRANSPOSE64 1
// Masked-exchange transpose network; must stay bit-identical to
// fixedpoint/bitops.h transpose64 (local copy, see header comment).
inline void transpose64(std::uint64_t x[64])
{
    std::uint64_t m = 0x00000000FFFFFFFFULL;
    for (int j = 32; j != 0; j >>= 1, m ^= m << j) {
        for (int k = 0; k < 64; k = (k + j + 1) & ~j) {
            const std::uint64_t t = ((x[k] >> j) ^ x[k + j]) & m;
            x[k] ^= t << j;
            x[k + j] ^= t;
        }
    }
}
#endif

#ifndef DVAFS_VEC_HAVE_F32_TILE
#define DVAFS_VEC_HAVE_F32_TILE 1
// Full 4x8 float tile, double accumulators, k ascending, separate mul and
// add per element -- the accumulation contract every overlay must match
// bit for bit (the build disables FP contraction globally).
inline void f32_tile(const float* a, const float* b, const float* bias,
                     float* c, std::size_t k, std::size_t n, std::size_t m0,
                     std::size_t n0)
{
    double acc[4][8];
    for (std::size_t i = 0; i < 4; ++i) {
        const double init =
            bias != nullptr ? static_cast<double>(bias[m0 + i]) : 0.0;
        for (std::size_t j = 0; j < 8; ++j) {
            acc[i][j] = init;
        }
    }
    for (std::size_t r = 0; r < k; ++r) {
        const float* brow = b + r * n + n0;
        double bd[8];
        for (std::size_t j = 0; j < 8; ++j) {
            bd[j] = static_cast<double>(brow[j]);
        }
        for (std::size_t i = 0; i < 4; ++i) {
            const double av = static_cast<double>(a[(m0 + i) * k + r]);
            for (std::size_t j = 0; j < 8; ++j) {
                acc[i][j] += av * bd[j];
            }
        }
    }
    for (std::size_t i = 0; i < 4; ++i) {
        float* crow = c + (m0 + i) * n + n0;
        for (std::size_t j = 0; j < 8; ++j) {
            crow[j] = static_cast<float>(acc[i][j]);
        }
    }
}
#endif

#ifndef DVAFS_VEC_HAVE_S8_DOT
#define DVAFS_VEC_HAVE_S8_DOT 1
// Contiguous int8 dot product (the n == 1 GEMM column, i.e. every fc
// layer). Exact int32 under the k <= 66571 contract; any summation order
// is bit-identical.
inline std::int32_t s8_dot(const std::int8_t* x, const std::int8_t* y,
                           std::size_t k)
{
    std::int32_t total = 0;
    for (std::size_t r = 0; r < k; ++r) {
        total += static_cast<std::int32_t>(x[r])
                 * static_cast<std::int32_t>(y[r]);
    }
    return total;
}
#endif

#ifndef DVAFS_VEC_HAVE_S8_CTILE
#define DVAFS_VEC_HAVE_S8_CTILE 1
// Full 4x16 int8 tile with int32 accumulators (conv layers after im2col).
inline void s8_ctile(const std::int8_t* a, const std::int8_t* b,
                     const std::int32_t* bias, std::int32_t* c,
                     std::size_t k, std::size_t n, std::size_t m0,
                     std::size_t n0)
{
    std::int32_t acc[4][16];
    for (std::size_t i = 0; i < 4; ++i) {
        const std::int32_t init = bias != nullptr ? bias[m0 + i] : 0;
        for (std::size_t j = 0; j < 16; ++j) {
            acc[i][j] = init;
        }
    }
    for (std::size_t r = 0; r < k; ++r) {
        const std::int8_t* brow = b + r * n + n0;
        for (std::size_t i = 0; i < 4; ++i) {
            const std::int32_t av =
                static_cast<std::int32_t>(a[(m0 + i) * k + r]);
            for (std::size_t j = 0; j < 16; ++j) {
                acc[i][j] += av * static_cast<std::int32_t>(brow[j]);
            }
        }
    }
    for (std::size_t i = 0; i < 4; ++i) {
        std::int32_t* crow = c + (m0 + i) * n + n0;
        for (std::size_t j = 0; j < 16; ++j) {
            crow[j] = acc[i][j];
        }
    }
}
#endif

#ifndef DVAFS_VEC_HAVE_S16_DOT
#define DVAFS_VEC_HAVE_S16_DOT 1
// Contiguous int16 dot product with exact int64 accumulation.
inline std::int64_t s16_dot(const std::int16_t* x, const std::int16_t* y,
                            std::size_t k)
{
    std::int64_t total = 0;
    for (std::size_t r = 0; r < k; ++r) {
        total += static_cast<std::int64_t>(x[r])
                 * static_cast<std::int64_t>(y[r]);
    }
    return total;
}
#endif
