// AVX-512 overlay: 512-bit definitions where the wider vectors or the
// vpopcntq instruction pay; everything else falls through to the AVX2
// overlay stacked underneath it (backend_avx512.cpp includes this header,
// then ops_avx2.h, then ops_scalar.h). Requires F+BW+VL+VPOPCNTDQ -- the
// runtime dispatcher checks all four before ever selecting this table.
// No #includes here; intrinsics come from vec/backend_prelude.h.

// Horizontal sums written against the zero-masked extract: GCC 12's
// _mm512_reduce_add_* go through the maskless _mm512_extracti64x4_epi64,
// whose _mm256_undefined_si256() pass-through operand trips
// -Wmaybe-uninitialized (GCC PR105593) under -Werror. The zero-masked
// form compiles to the same single vextracti64x4.
inline std::uint64_t reduce_add_u64(__m512i v)
{
    const __m256i s4 = _mm256_add_epi64(
        _mm512_castsi512_si256(v),
        _mm512_maskz_extracti64x4_epi64(static_cast<__mmask8>(0xff), v, 1));
    const __m128i s2 = _mm_add_epi64(_mm256_castsi256_si128(s4),
                                     _mm256_extracti128_si256(s4, 1));
    return static_cast<std::uint64_t>(_mm_cvtsi128_si64(s2))
           + static_cast<std::uint64_t>(_mm_extract_epi64(s2, 1));
}

inline std::int32_t reduce_add_s32(__m512i v)
{
    const __m256i s8 = _mm256_add_epi32(
        _mm512_castsi512_si256(v),
        _mm512_maskz_extracti64x4_epi64(static_cast<__mmask8>(0xff), v, 1));
    const __m128i s4 = _mm_add_epi32(_mm256_castsi256_si128(s8),
                                     _mm256_extracti128_si256(s8, 1));
    const __m128i s2 = _mm_add_epi32(s4, _mm_shuffle_epi32(s4, 0x4E));
    const __m128i s1 = _mm_add_epi32(s2, _mm_shuffle_epi32(s2, 0xB1));
    return _mm_cvtsi128_si32(s1);
}

#ifndef DVAFS_VEC_HAVE_MASKED_POPCOUNT
#define DVAFS_VEC_HAVE_MASKED_POPCOUNT 1
inline std::uint64_t masked_popcount(const std::uint64_t* x,
                                     const std::uint64_t* m, int n)
{
    __m512i acc = _mm512_setzero_si512();
    int k = 0;
    for (; k + 8 <= n; k += 8) {
        const __m512i v = _mm512_and_si512(
            _mm512_loadu_si512(x + k), _mm512_loadu_si512(m + k));
        acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(v));
    }
    std::uint64_t total = reduce_add_u64(acc);
    if (k + 4 <= n) { // 256-bit leg (VL): the compiled sim's W=4 width
        const __m256i v = _mm256_and_si256(
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + k)),
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(m + k)));
        const __m256i p = _mm256_popcnt_epi64(v);
        const __m128i s = _mm_add_epi64(_mm256_castsi256_si128(p),
                                        _mm256_extracti128_si256(p, 1));
        total += static_cast<std::uint64_t>(_mm_cvtsi128_si64(s))
                 + static_cast<std::uint64_t>(_mm_extract_epi64(s, 1));
        k += 4;
    }
    for (; k < n; ++k) {
        total += static_cast<std::uint64_t>(
            __builtin_popcountll(x[k] & m[k]));
    }
    return total;
}
#endif

#ifndef DVAFS_VEC_HAVE_SHIFT_TRANSITIONS
#define DVAFS_VEC_HAVE_SHIFT_TRANSITIONS 1
// The W=8 toggle kernel in one 512-bit pass: valignq builds the
// left-neighbour vector [carry<<63, w0..w6], vpopcntq counts. The W=4
// width takes a 256-bit VL leg; odd tails go scalar with the carry chained
// through.
inline std::uint64_t shift_transitions(const std::uint64_t* cur,
                                       const std::uint64_t* mask, int n,
                                       std::uint64_t carry_in)
{
    __m512i acc = _mm512_setzero_si512();
    std::uint64_t carry = carry_in;
    int k = 0;
    for (; k + 8 <= n; k += 8) {
        const __m512i w = _mm512_loadu_si512(cur + k);
        const __m512i mk = _mm512_loadu_si512(mask + k);
        const __m512i cv =
            _mm512_set1_epi64(static_cast<long long>(carry << 63));
        const __m512i prev = _mm512_alignr_epi64(w, cv, 7);
        carry = cur[k + 7] >> 63;
        const __m512i shifted = _mm512_or_si512(
            _mm512_slli_epi64(w, 1), _mm512_srli_epi64(prev, 63));
        const __m512i x =
            _mm512_and_si512(_mm512_xor_si512(w, shifted), mk);
        acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(x));
    }
    std::uint64_t total = reduce_add_u64(acc);
    if (k + 4 <= n) {
        const __m256i w = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(cur + k));
        const __m256i mk = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(mask + k));
        const __m256i cv =
            _mm256_set1_epi64x(static_cast<long long>(carry << 63));
        const __m256i prev = _mm256_alignr_epi64(w, cv, 3);
        carry = cur[k + 3] >> 63;
        const __m256i shifted = _mm256_or_si256(
            _mm256_slli_epi64(w, 1), _mm256_srli_epi64(prev, 63));
        const __m256i x =
            _mm256_and_si256(_mm256_xor_si256(w, shifted), mk);
        const __m256i p = _mm256_popcnt_epi64(x);
        const __m128i s = _mm_add_epi64(_mm256_castsi256_si128(p),
                                        _mm256_extracti128_si256(p, 1));
        total += static_cast<std::uint64_t>(_mm_cvtsi128_si64(s))
                 + static_cast<std::uint64_t>(_mm_extract_epi64(s, 1));
        k += 4;
    }
    for (; k < n; ++k) {
        const std::uint64_t shifted = (cur[k] << 1) | carry;
        carry = cur[k] >> 63;
        total += static_cast<std::uint64_t>(
            __builtin_popcountll((cur[k] ^ shifted) & mask[k]));
    }
    return total;
}
#endif

#ifndef DVAFS_VEC_HAVE_F32_TILE
#define DVAFS_VEC_HAVE_F32_TILE 1
// 4x8 tile with one 8-double zmm accumulator per row; vcvtps2pd, vmulpd,
// vaddpd -- the same exact op sequence as the scalar tile (no FMA).
inline void f32_tile(const float* a, const float* b, const float* bias,
                     float* c, std::size_t k, std::size_t n, std::size_t m0,
                     std::size_t n0)
{
    __m512d acc[4];
    for (std::size_t i = 0; i < 4; ++i) {
        acc[i] = _mm512_set1_pd(
            bias != nullptr ? static_cast<double>(bias[m0 + i]) : 0.0);
    }
    for (std::size_t r = 0; r < k; ++r) {
        const __m512d bd =
            _mm512_cvtps_pd(_mm256_loadu_ps(b + r * n + n0));
        for (std::size_t i = 0; i < 4; ++i) {
            const __m512d av = _mm512_set1_pd(
                static_cast<double>(a[(m0 + i) * k + r]));
            acc[i] = _mm512_add_pd(acc[i], _mm512_mul_pd(av, bd));
        }
    }
    for (std::size_t i = 0; i < 4; ++i) {
        _mm256_storeu_ps(c + (m0 + i) * n + n0, _mm512_cvtpd_ps(acc[i]));
    }
}
#endif

#ifndef DVAFS_VEC_HAVE_S8_DOT
#define DVAFS_VEC_HAVE_S8_DOT 1
// 32 int8 MAC pairs per step: widen to int16 in a zmm, vpmaddwd (exact;
// the 0x8000 corner is unreachable from int8), accumulate in 16 int32
// lanes. Per-lane sums stay below 2^31 under the k <= 66571 contract.
inline std::int32_t s8_dot(const std::int8_t* x, const std::int8_t* y,
                           std::size_t k)
{
    __m512i acc = _mm512_setzero_si512();
    std::size_t r = 0;
    for (; r + 32 <= k; r += 32) {
        const __m512i xv = _mm512_cvtepi8_epi16(_mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(x + r)));
        const __m512i yv = _mm512_cvtepi8_epi16(_mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(y + r)));
        acc = _mm512_add_epi32(acc, _mm512_madd_epi16(xv, yv));
    }
    std::int32_t total = reduce_add_s32(acc);
    for (; r < k; ++r) {
        total += static_cast<std::int32_t>(x[r])
                 * static_cast<std::int32_t>(y[r]);
    }
    return total;
}
#endif
