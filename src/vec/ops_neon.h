// NEON (aarch64) overlay. Included inside the neon backend namespace; no
// #includes here -- intrinsics come from vec/backend_prelude.h. Ops this
// overlay does not define (transpose64, s8_ctile, s16_dot) fall through
// to the scalar fallback underneath.

#ifndef DVAFS_VEC_HAVE_MASKED_POPCOUNT
#define DVAFS_VEC_HAVE_MASKED_POPCOUNT 1
inline std::uint64_t masked_popcount(const std::uint64_t* x,
                                     const std::uint64_t* m, int n)
{
    uint64x2_t acc = vdupq_n_u64(0);
    int k = 0;
    for (; k + 2 <= n; k += 2) {
        const uint64x2_t v = vandq_u64(vld1q_u64(x + k), vld1q_u64(m + k));
        acc = vaddq_u64(
            acc, vpaddlq_u32(vpaddlq_u16(
                     vpaddlq_u8(vcntq_u8(vreinterpretq_u8_u64(v))))));
    }
    std::uint64_t total = vgetq_lane_u64(acc, 0) + vgetq_lane_u64(acc, 1);
    for (; k < n; ++k) {
        total += static_cast<std::uint64_t>(
            __builtin_popcountll(x[k] & m[k]));
    }
    return total;
}
#endif

#ifndef DVAFS_VEC_HAVE_SHIFT_TRANSITIONS
#define DVAFS_VEC_HAVE_SHIFT_TRANSITIONS 1
inline std::uint64_t shift_transitions(const std::uint64_t* cur,
                                       const std::uint64_t* mask, int n,
                                       std::uint64_t carry_in)
{
    uint64x2_t acc = vdupq_n_u64(0);
    std::uint64_t carry = carry_in;
    int k = 0;
    for (; k + 2 <= n; k += 2) {
        const uint64x2_t w = vld1q_u64(cur + k);
        const uint64x2_t mk = vld1q_u64(mask + k);
        // prev = [carry<<63, w0]: each qword's left neighbour.
        const uint64x2_t prev =
            vextq_u64(vdupq_n_u64(carry << 63), w, 1);
        carry = cur[k + 1] >> 63;
        const uint64x2_t shifted =
            vorrq_u64(vshlq_n_u64(w, 1), vshrq_n_u64(prev, 63));
        const uint64x2_t x = vandq_u64(veorq_u64(w, shifted), mk);
        acc = vaddq_u64(
            acc, vpaddlq_u32(vpaddlq_u16(
                     vpaddlq_u8(vcntq_u8(vreinterpretq_u8_u64(x))))));
    }
    std::uint64_t total = vgetq_lane_u64(acc, 0) + vgetq_lane_u64(acc, 1);
    for (; k < n; ++k) {
        const std::uint64_t shifted = (cur[k] << 1) | carry;
        carry = cur[k] >> 63;
        total += static_cast<std::uint64_t>(
            __builtin_popcountll((cur[k] ^ shifted) & mask[k]));
    }
    return total;
}
#endif

#ifndef DVAFS_VEC_HAVE_F32_TILE
#define DVAFS_VEC_HAVE_F32_TILE 1
// 4x8 tile, four 2-double accumulators per row; vcvt_f64_f32 widens, then
// separate mul and add (no vfma -- the bit-identity contract).
inline void f32_tile(const float* a, const float* b, const float* bias,
                     float* c, std::size_t k, std::size_t n, std::size_t m0,
                     std::size_t n0)
{
    float64x2_t acc[4][4];
    for (std::size_t i = 0; i < 4; ++i) {
        const double init =
            bias != nullptr ? static_cast<double>(bias[m0 + i]) : 0.0;
        for (std::size_t q = 0; q < 4; ++q) {
            acc[i][q] = vdupq_n_f64(init);
        }
    }
    for (std::size_t r = 0; r < k; ++r) {
        const float* brow = b + r * n + n0;
        const float32x4_t blo = vld1q_f32(brow);
        const float32x4_t bhi = vld1q_f32(brow + 4);
        const float64x2_t bd[4] = {
            vcvt_f64_f32(vget_low_f32(blo)), vcvt_high_f64_f32(blo),
            vcvt_f64_f32(vget_low_f32(bhi)), vcvt_high_f64_f32(bhi)};
        for (std::size_t i = 0; i < 4; ++i) {
            const float64x2_t av = vdupq_n_f64(
                static_cast<double>(a[(m0 + i) * k + r]));
            for (std::size_t q = 0; q < 4; ++q) {
                acc[i][q] = vaddq_f64(acc[i][q], vmulq_f64(av, bd[q]));
            }
        }
    }
    for (std::size_t i = 0; i < 4; ++i) {
        float* crow = c + (m0 + i) * n + n0;
        vst1q_f32(crow, vcombine_f32(vcvt_f32_f64(acc[i][0]),
                                     vcvt_f32_f64(acc[i][1])));
        vst1q_f32(crow + 4, vcombine_f32(vcvt_f32_f64(acc[i][2]),
                                         vcvt_f32_f64(acc[i][3])));
    }
}
#endif

#ifndef DVAFS_VEC_HAVE_S8_DOT
#define DVAFS_VEC_HAVE_S8_DOT 1
// vmull_s8 widens 8 products to int16, vpadalq_s16 pair-accumulates into
// int32 lanes; exact, and the int32 lanes stay small under k <= 66571.
inline std::int32_t s8_dot(const std::int8_t* x, const std::int8_t* y,
                           std::size_t k)
{
    int32x4_t acc = vdupq_n_s32(0);
    std::size_t r = 0;
    for (; r + 8 <= k; r += 8) {
        const int16x8_t p = vmull_s8(vld1_s8(x + r), vld1_s8(y + r));
        acc = vpadalq_s16(acc, p);
    }
    std::int32_t total = vaddvq_s32(acc);
    for (; r < k; ++r) {
        total += static_cast<std::int32_t>(x[r])
                 * static_cast<std::int32_t>(y[r]);
    }
    return total;
}
#endif
