// Column-aligned ASCII table printer. Every bench binary uses this to emit
// the rows/series of the paper's tables and figures in a uniform format.

#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace dvafs {

// Formatting helpers shared by benches and examples.
std::string fmt_double(double v, int precision = 3);
std::string fmt_fixed(double v, int precision = 2);
std::string fmt_percent(double fraction, int precision = 0);
std::string fmt_sci(double v, int precision = 2);

class ascii_table {
public:
    explicit ascii_table(std::vector<std::string> headers);

    // Appends a row; the row is padded/truncated to the header width.
    void add_row(std::vector<std::string> cells);

    // Convenience: converts each double with fmt_double.
    void add_row_numeric(const std::vector<double>& cells, int precision = 3);

    std::size_t rows() const noexcept { return rows_.size(); }
    std::size_t columns() const noexcept { return headers_.size(); }

    // Renders with a header separator and right-aligned numeric-looking cells.
    void print(std::ostream& os) const;
    std::string to_string() const;

private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

// Prints a titled section banner (used by benches to label each figure).
void print_banner(std::ostream& os, const std::string& title);

} // namespace dvafs
