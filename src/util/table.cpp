#include "util/table.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace dvafs {

namespace {

bool looks_numeric(const std::string& s)
{
    if (s.empty()) {
        return false;
    }
    std::size_t i = (s[0] == '-' || s[0] == '+') ? 1 : 0;
    bool digit_seen = false;
    for (; i < s.size(); ++i) {
        const char c = s[i];
        if (std::isdigit(static_cast<unsigned char>(c))) {
            digit_seen = true;
        } else if (c != '.' && c != 'e' && c != 'E' && c != '-' && c != '+'
                   && c != '%' && c != 'x') {
            return false;
        }
    }
    return digit_seen;
}

} // namespace

std::string fmt_double(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*g", precision, v);
    return buf;
}

std::string fmt_fixed(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", precision, v);
    return buf;
}

std::string fmt_percent(double fraction, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f%%", precision, fraction * 100.0);
    return buf;
}

std::string fmt_sci(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*e", precision, v);
    return buf;
}

ascii_table::ascii_table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void ascii_table::add_row(std::vector<std::string> cells)
{
    cells.resize(headers_.size());
    rows_.push_back(std::move(cells));
}

void ascii_table::add_row_numeric(const std::vector<double>& cells,
                                  int precision)
{
    std::vector<std::string> row;
    row.reserve(cells.size());
    for (const double v : cells) {
        row.push_back(fmt_double(v, precision));
    }
    add_row(std::move(row));
}

void ascii_table::print(std::ostream& os) const
{
    std::vector<std::size_t> width(headers_.size(), 0);
    for (std::size_t c = 0; c < headers_.size(); ++c) {
        width[c] = headers_[c].size();
    }
    for (const auto& row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            width[c] = std::max(width[c], row[c].size());
        }
    }

    const auto emit = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            const std::size_t pad = width[c] - row[c].size();
            os << "  ";
            if (looks_numeric(row[c])) {
                os << std::string(pad, ' ') << row[c];
            } else {
                os << row[c] << std::string(pad, ' ');
            }
        }
        os << '\n';
    };

    emit(headers_);
    std::size_t total = 0;
    for (const std::size_t w : width) {
        total += w + 2;
    }
    os << std::string(total, '-') << '\n';
    for (const auto& row : rows_) {
        emit(row);
    }
}

std::string ascii_table::to_string() const
{
    std::ostringstream ss;
    print(ss);
    return ss.str();
}

void print_banner(std::ostream& os, const std::string& title)
{
    os << '\n'
       << "==== " << title << " " << std::string(std::max<std::size_t>(
              4, 74 - std::min<std::size_t>(70, title.size())), '=')
       << '\n';
}

} // namespace dvafs
