// Minimal CSV writer so bench outputs can be re-plotted outside the repo.

#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace dvafs {

class csv_writer {
public:
    // Opens `path` for writing and emits the header row.
    // Throws std::runtime_error if the file cannot be created.
    csv_writer(const std::string& path, std::vector<std::string> headers);

    void add_row(const std::vector<std::string>& cells);
    void add_row_numeric(const std::vector<double>& cells);

    const std::string& path() const noexcept { return path_; }

private:
    std::string path_;
    std::ofstream out_;
    std::size_t columns_ = 0;
};

// Escapes a cell per RFC 4180 (quotes cells containing comma/quote/newline).
std::string csv_escape(const std::string& cell);

} // namespace dvafs
