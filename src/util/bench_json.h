// Machine-readable bench output.
//
// Every bench_* target accepts `--json <path>`; when present, the bench
// writes a JSON array of flat records
//     {"bench": "...", "metric": "...", "value": <number>, "unit": "...",
//      "isa": "..."}
// alongside its human-readable tables, so CI can archive a benchmark
// trajectory and gate on regressions. The full schema -- field
// conventions, units, gate exit codes, which benches CI uploads, and the
// checked-in BENCH_sim.json baseline built by scripts/collect_bench.py --
// lives in docs/bench_schema.md.

#pragma once

#include <string>
#include <vector>

namespace dvafs {

struct bench_record {
    std::string metric;
    double value = 0.0;
    std::string unit;
};

class bench_reporter {
public:
    // `bench` names the target (the "bench" field of every record);
    // argv is scanned for `--json <path>` and `--bench-suffix <s>` -- the
    // suffix is appended as "<bench>.<s>", so one bench run twice under
    // different conditions (CI's cold/warm cache lane) emits records
    // collect_bench.py accepts as distinct instead of rejecting as
    // duplicates. Throws std::invalid_argument when either flag is
    // present without a value.
    bench_reporter(std::string bench, int argc, char** argv);

    // Records a metric (kept even without --json; benches may assert on
    // their own records).
    void add(const std::string& metric, double value,
             const std::string& unit);

    // Tags every record with the host-SIMD backend the numbers were
    // measured under (vec::isa_name of the active table). Defaults to
    // "default": records from benches that predate the vec layer -- and
    // checked-in baselines missing the field -- stay valid, and
    // collect_bench.py treats a missing "isa" as "default" when merging.
    void set_isa(std::string isa) { isa_ = std::move(isa); }
    const std::string& isa() const noexcept { return isa_; }

    bool enabled() const noexcept { return !path_.empty(); }
    const std::vector<bench_record>& records() const noexcept
    {
        return records_;
    }

    // Writes the records when --json was given (no-op otherwise). Returns
    // false and prints to stderr when the file cannot be written.
    bool write() const;

private:
    std::string bench_;
    std::string path_;
    std::string isa_ = "default";
    std::vector<bench_record> records_;
};

// Scans argv for `--<name> <value>`; returns fallback when absent. Shared
// by bench flags like --min-speedup. Throws std::invalid_argument on a
// missing or non-numeric value.
double bench_flag_double(int argc, char** argv, const std::string& name,
                         double fallback);

// String-valued variant of bench_flag_double (e.g. --isa avx2). Throws
// std::invalid_argument when the flag is present without a value.
std::string bench_flag_string(int argc, char** argv,
                              const std::string& name,
                              const std::string& fallback);

} // namespace dvafs
