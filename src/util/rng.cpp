#include "util/rng.h"

#include <cmath>

namespace dvafs {

std::uint32_t pcg32::bounded(std::uint32_t bound) noexcept
{
    if (bound == 0) {
        return 0;
    }
    // Lemire-style rejection: threshold is the smallest value that keeps the
    // distribution over [0, bound) exactly uniform.
    const std::uint32_t threshold = (-bound) % bound;
    for (;;) {
        const std::uint32_t r = next_u32();
        if (r >= threshold) {
            return r % bound;
        }
    }
}

std::int64_t pcg32::range(std::int64_t lo, std::int64_t hi) noexcept
{
    if (hi <= lo) {
        return lo;
    }
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1U;
    if (span <= 0xffffffffULL) {
        return lo + static_cast<std::int64_t>(
                        bounded(static_cast<std::uint32_t>(span)));
    }
    // Wide span: 64-bit modulo is acceptable here (span >> bias).
    return lo + static_cast<std::int64_t>(next_u64() % span);
}

double pcg32::gaussian() noexcept
{
    if (has_spare_) {
        has_spare_ = false;
        return spare_;
    }
    double u = 0.0;
    double v = 0.0;
    double s = 0.0;
    do {
        u = uniform(-1.0, 1.0);
        v = uniform(-1.0, 1.0);
        s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double m = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * m;
    has_spare_ = true;
    return u * m;
}

} // namespace dvafs
