#include "util/parallel.h"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace dvafs {

unsigned resolve_threads(unsigned threads, std::size_t count) noexcept
{
    unsigned n = threads != 0 ? threads : std::thread::hardware_concurrency();
    if (n == 0) {
        n = 1;
    }
    if (static_cast<std::size_t>(n) > count) {
        n = static_cast<unsigned>(count);
    }
    return n;
}

void parallel_for(std::size_t count, unsigned threads,
                  const std::function<void(std::size_t)>& fn)
{
    if (count == 0) {
        return;
    }
    const unsigned n_threads = resolve_threads(threads, count);

    std::atomic<std::size_t> next{0};
    std::exception_ptr first_error;
    std::mutex error_mu;
    const auto worker = [&] {
        for (std::size_t i; (i = next.fetch_add(1)) < count;) {
            try {
                fn(i);
            } catch (...) {
                const std::lock_guard<std::mutex> lock(error_mu);
                if (!first_error) {
                    first_error = std::current_exception();
                }
            }
        }
    };

    if (n_threads <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(n_threads);
        for (unsigned t = 0; t < n_threads; ++t) {
            pool.emplace_back(worker);
        }
        for (std::thread& t : pool) {
            t.join();
        }
    }
    if (first_error) {
        std::rethrow_exception(first_error);
    }
}

} // namespace dvafs
