// Streaming statistics accumulators used by the error-analysis and energy
// harnesses: mean/variance (Welford), RMSE against a reference, min/max.

#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

namespace dvafs {

// Single-pass mean / variance / extrema accumulator.
class running_stats {
public:
    void add(double x) noexcept;

    std::uint64_t count() const noexcept { return n_; }
    double mean() const noexcept { return n_ ? mean_ : 0.0; }
    // Population variance; 0 with fewer than 2 samples.
    double variance() const noexcept
    {
        return n_ > 1 ? m2_ / static_cast<double>(n_) : 0.0;
    }
    double stddev() const noexcept { return std::sqrt(variance()); }
    double min() const noexcept { return n_ ? min_ : 0.0; }
    double max() const noexcept { return n_ ? max_ : 0.0; }
    double sum() const noexcept { return sum_; }

    void reset() noexcept { *this = running_stats{}; }

private:
    std::uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

// Accumulates error metrics of an approximate value stream against an exact
// reference stream: RMSE, mean error (bias), mean absolute error, maximum
// absolute error, and the error rate (fraction of non-exact results).
class error_stats {
public:
    void add(double exact, double approx) noexcept;

    std::uint64_t count() const noexcept { return n_; }
    double rmse() const noexcept
    {
        return n_ ? std::sqrt(sq_sum_ / static_cast<double>(n_)) : 0.0;
    }
    double mean_error() const noexcept
    {
        return n_ ? err_sum_ / static_cast<double>(n_) : 0.0;
    }
    double mean_abs_error() const noexcept
    {
        return n_ ? abs_sum_ / static_cast<double>(n_) : 0.0;
    }
    double max_abs_error() const noexcept { return max_abs_; }
    double error_rate() const noexcept
    {
        return n_ ? static_cast<double>(nonzero_)
                        / static_cast<double>(n_)
                  : 0.0;
    }
    // RMSE normalized to the reference full-scale value (paper Fig. 3b uses
    // RMSE relative to the exact multiplier's output range).
    double rmse_relative(double full_scale) const noexcept
    {
        return full_scale > 0.0 ? rmse() / full_scale : 0.0;
    }

    void reset() noexcept { *this = error_stats{}; }

private:
    std::uint64_t n_ = 0;
    std::uint64_t nonzero_ = 0;
    double sq_sum_ = 0.0;
    double err_sum_ = 0.0;
    double abs_sum_ = 0.0;
    double max_abs_ = 0.0;
};

// Signal-to-noise ratio in dB of approx vs. exact streams (used by the DCT
// example: the paper's intro cites a 2 dB SNR loss at 4-bit DCT).
class snr_stats {
public:
    void add(double exact, double approx) noexcept
    {
        signal_ += exact * exact;
        const double e = exact - approx;
        noise_ += e * e;
        ++n_;
    }

    double snr_db() const noexcept
    {
        if (n_ == 0 || noise_ == 0.0) {
            return std::numeric_limits<double>::infinity();
        }
        if (signal_ == 0.0) {
            return -std::numeric_limits<double>::infinity();
        }
        return 10.0 * std::log10(signal_ / noise_);
    }

    void reset() noexcept { *this = snr_stats{}; }

private:
    std::uint64_t n_ = 0;
    double signal_ = 0.0;
    double noise_ = 0.0;
};

} // namespace dvafs
