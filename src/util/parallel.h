// Shared thread-pool discipline for data-parallel loops.
//
// One contract, used by sim_engine::run_batch, the CNN batch_evaluator
// and the streaming runtime's frame scheduler: work items are claimed off
// an atomic counter, every item writes its result into a preallocated
// per-index slot (so the outcome is bit-identical for any thread count),
// and the first worker exception is rethrown on the caller's thread after
// the pool joins. Every repo-wide determinism claim -- threaded sweeps,
// dataset fan-out, batched frame streams -- reduces to this contract plus
// "reduce in index order afterwards".

#pragma once

#include <cstddef>
#include <functional>

namespace dvafs {

// Resolves a requested worker count: 0 means the hardware default, and the
// pool never runs more workers than there are items.
unsigned resolve_threads(unsigned threads, std::size_t count) noexcept;

// Runs fn(0) .. fn(count-1) across resolve_threads(threads, count)
// workers. fn must only write state owned by its index (the preallocated-
// slot rule above); with threads == 1 (or count <= 1) everything runs on
// the calling thread in index order.
//
// Workers are spawned per call and joined before returning (the same
// discipline sim_engine::run_batch always used): items cost milliseconds
// here, so spawn overhead is noise and there is no pool state to leak
// between callers. Note that per-call workers also get fresh
// thread_local scratch (e.g. the im2col column buffer), so that
// amortization only applies within one parallel_for; a persistent pool
// is the upgrade path if item granularity ever drops.
void parallel_for(std::size_t count, unsigned threads,
                  const std::function<void(std::size_t)>& fn);

} // namespace dvafs
