#include "util/disk_store.h"

#include "util/serial.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include <unistd.h>

namespace dvafs {

namespace {

// "DVFS" little-endian; bumped together with store_format_version whenever
// the framing (not a payload) changes.
constexpr std::uint32_t store_magic = 0x53465644U;
constexpr std::uint32_t store_format_version = 1;

std::uint64_t fnv1a_init() noexcept { return 1469598103934665603ULL; }

void fnv1a_mix(std::uint64_t& h, std::uint8_t b) noexcept
{
    h ^= b;
    h *= 1099511628211ULL;
}

std::atomic<disk_fault_hook*> g_fault_hook{nullptr};

// Process-wide counters; plain relaxed atomics (diagnostics, not
// synchronization).
struct stats_cells {
    std::atomic<std::uint64_t> loads{0};
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> stores{0};
    std::atomic<std::uint64_t> store_failures{0};
    std::atomic<std::uint64_t> quarantined{0};
    std::atomic<std::uint64_t> retries{0};
    std::atomic<std::uint64_t> faults_injected{0};
};

stats_cells& cells() noexcept
{
    static stats_cells s;
    return s;
}

void bump(std::atomic<std::uint64_t>& c) noexcept
{
    c.fetch_add(1, std::memory_order_relaxed);
}

disk_fault consult_hook(disk_op op, const std::string& kind,
                        const std::string& key)
{
    disk_fault_hook* hook =
        g_fault_hook.load(std::memory_order_acquire);
    if (hook == nullptr) {
        return disk_fault::none;
    }
    const disk_fault f = hook->on_disk_op(op, kind, key);
    if (f != disk_fault::none) {
        bump(cells().faults_injected);
    }
    return f;
}

void backoff_sleep(int attempt)
{
    std::this_thread::sleep_for(std::chrono::milliseconds(
        disk_store::retry_backoff_ms * (attempt + 1)));
}

// Best-effort rename of a failed-validation file to <path>.bad so the
// next process start misses cheaply instead of re-validating the same
// corrupt bytes. Losing the race to a concurrent quarantine (or any
// filesystem error) is fine -- the entry is gone either way.
void quarantine(const std::filesystem::path& path) noexcept
{
    std::error_code ec;
    std::filesystem::rename(
        path, std::filesystem::path(path.string() + ".bad"), ec);
    if (!ec) {
        bump(cells().quarantined);
    }
}

} // namespace

std::uint64_t fnv1a_hash(const std::string& s) noexcept
{
    std::uint64_t h = fnv1a_init();
    for (const char c : s) {
        fnv1a_mix(h, static_cast<std::uint8_t>(c));
    }
    return h;
}

std::uint64_t fnv1a_hash(const std::vector<std::uint8_t>& bytes) noexcept
{
    std::uint64_t h = fnv1a_init();
    for (const std::uint8_t b : bytes) {
        fnv1a_mix(h, b);
    }
    return h;
}

const char* to_string(disk_fault f) noexcept
{
    switch (f) {
    case disk_fault::none: return "none";
    case disk_fault::slow_read: return "slow-read";
    case disk_fault::corrupt: return "corrupt";
    case disk_fault::transient: return "transient";
    case disk_fault::enospc: return "enospc";
    }
    return "?";
}

disk_fault_hook* set_disk_fault_hook(disk_fault_hook* hook) noexcept
{
    return g_fault_hook.exchange(hook, std::memory_order_acq_rel);
}

disk_fault_hook* get_disk_fault_hook() noexcept
{
    return g_fault_hook.load(std::memory_order_acquire);
}

disk_store_stats disk_store::stats() noexcept
{
    const stats_cells& c = cells();
    disk_store_stats s;
    s.loads = c.loads.load(std::memory_order_relaxed);
    s.hits = c.hits.load(std::memory_order_relaxed);
    s.stores = c.stores.load(std::memory_order_relaxed);
    s.store_failures = c.store_failures.load(std::memory_order_relaxed);
    s.quarantined = c.quarantined.load(std::memory_order_relaxed);
    s.retries = c.retries.load(std::memory_order_relaxed);
    s.faults_injected = c.faults_injected.load(std::memory_order_relaxed);
    return s;
}

void disk_store::reset_stats() noexcept
{
    stats_cells& c = cells();
    c.loads.store(0, std::memory_order_relaxed);
    c.hits.store(0, std::memory_order_relaxed);
    c.stores.store(0, std::memory_order_relaxed);
    c.store_failures.store(0, std::memory_order_relaxed);
    c.quarantined.store(0, std::memory_order_relaxed);
    c.retries.store(0, std::memory_order_relaxed);
    c.faults_injected.store(0, std::memory_order_relaxed);
}

disk_store disk_store::from_env()
{
    const char* dir = std::getenv("DVAFS_CACHE_DIR");
    return dir != nullptr && dir[0] != '\0' ? disk_store(dir)
                                            : disk_store();
}

std::string disk_store::path_for(const std::string& kind,
                                 const std::string& key) const
{
    std::ostringstream os;
    os << dir_ << '/' << kind << '/' << std::hex << fnv1a_hash(key)
       << ".bin";
    return os.str();
}

std::optional<std::vector<std::uint8_t>>
disk_store::load(const std::string& kind, const std::string& key) const
{
    if (!enabled()) {
        return std::nullopt;
    }
    bump(cells().loads);

    std::vector<std::uint8_t> raw;
    bool read_ok = false;
    bool injected_corrupt = false;
    for (int attempt = 0; attempt <= max_retries; ++attempt) {
        if (attempt > 0) {
            bump(cells().retries);
            backoff_sleep(attempt - 1);
        }
        const disk_fault f = consult_hook(disk_op::load, kind, key);
        if (f == disk_fault::slow_read) {
            backoff_sleep(0); // modeled latency; wall clock only
        } else if (f == disk_fault::transient) {
            continue; // retriable: this attempt failed before the read
        } else if (f == disk_fault::corrupt) {
            injected_corrupt = true;
        }
        try {
            std::ifstream in(path_for(kind, key),
                             std::ios::binary | std::ios::ate);
            if (!in) {
                // Absent entries are the common miss; retrying cannot
                // make a file exist.
                return std::nullopt;
            }
            const std::streamoff size = in.tellg();
            if (size < 0) {
                continue;
            }
            raw.resize(static_cast<std::size_t>(size));
            in.seekg(0);
            in.read(reinterpret_cast<char*>(raw.data()),
                    static_cast<std::streamsize>(raw.size()));
            if (!in) {
                continue; // short read of an existing file: transient
            }
            read_ok = true;
            break;
        } catch (...) {
            continue;
        }
    }
    if (!read_ok) {
        return std::nullopt;
    }
    if (injected_corrupt && !raw.empty()) {
        raw[raw.size() / 2] ^= 0x40U; // land inside the payload/checksum
    }

    // Frame checks. Integrity failures -- wrong magic, a format bump, bit
    // rot (checksum), plain truncation -- quarantine the file (renamed to
    // <name>.bad) so the corrupt entry costs one validation, not one per
    // process start. A filename-hash collision (valid frame, different
    // embedded key) is a live entry for another key: plain miss, no
    // quarantine.
    const std::filesystem::path path(path_for(kind, key));
    try {
        byte_reader r(raw);
        if (r.u32() != store_magic
            || r.u32() != store_format_version) {
            quarantine(path);
            return std::nullopt;
        }
        if (r.str() != kind || r.str() != key) {
            return std::nullopt;
        }
        const std::uint64_t checksum = r.u64();
        std::vector<std::uint8_t> payload = r.bytes_u8();
        if (!r.done() || fnv1a_hash(payload) != checksum) {
            quarantine(path);
            return std::nullopt;
        }
        bump(cells().hits);
        return payload;
    } catch (const serial_error&) {
        quarantine(path);
        return std::nullopt;
    }
}

bool disk_store::store(const std::string& kind, const std::string& key,
                       const std::vector<std::uint8_t>& payload) const
{
    if (!enabled()) {
        return false;
    }
    bump(cells().stores);
    byte_writer w;
    w.u32(store_magic);
    w.u32(store_format_version);
    w.str(kind);
    w.str(key);
    w.u64(fnv1a_hash(payload));
    w.bytes_u8(payload);

    for (int attempt = 0; attempt <= max_retries; ++attempt) {
        if (attempt > 0) {
            bump(cells().retries);
            backoff_sleep(attempt - 1);
        }
        const disk_fault f = consult_hook(disk_op::store, kind, key);
        if (f == disk_fault::transient) {
            continue;
        }
        if (f == disk_fault::enospc) {
            // A full disk does not clear on retry; degrade immediately.
            break;
        }
        try {
            namespace fs = std::filesystem;
            const fs::path target(path_for(kind, key));
            fs::create_directories(target.parent_path());
            // Unique temp name in the *same* directory (rename must not
            // cross filesystems): pid + a process-local counter.
            static std::atomic<std::uint64_t> seq{0};
            std::ostringstream tmp_name;
            tmp_name << target.filename().string() << ".tmp."
                     << static_cast<unsigned long>(::getpid()) << "."
                     << seq.fetch_add(1, std::memory_order_relaxed);
            const fs::path tmp = target.parent_path() / tmp_name.str();
            {
                std::ofstream out(tmp,
                                  std::ios::binary | std::ios::trunc);
                if (!out) {
                    continue;
                }
                const auto& bytes = w.data();
                out.write(reinterpret_cast<const char*>(bytes.data()),
                          static_cast<std::streamsize>(bytes.size()));
                if (!out) {
                    out.close();
                    fs::remove(tmp);
                    continue;
                }
            }
            // Atomic publication: concurrent writers race renames, and
            // the last complete file wins; a reader sees old or new,
            // never torn.
            std::error_code ec;
            fs::rename(tmp, target, ec);
            if (ec) {
                fs::remove(tmp, ec);
                continue;
            }
            return true;
        } catch (...) {
            continue;
        }
    }
    bump(cells().store_failures);
    return false;
}

} // namespace dvafs
