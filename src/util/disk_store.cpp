#include "util/disk_store.h"

#include "util/serial.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <unistd.h>

namespace dvafs {

namespace {

// "DVFS" little-endian; bumped together with store_format_version whenever
// the framing (not a payload) changes.
constexpr std::uint32_t store_magic = 0x53465644U;
constexpr std::uint32_t store_format_version = 1;

std::uint64_t fnv1a_init() noexcept { return 1469598103934665603ULL; }

void fnv1a_mix(std::uint64_t& h, std::uint8_t b) noexcept
{
    h ^= b;
    h *= 1099511628211ULL;
}

} // namespace

std::uint64_t fnv1a_hash(const std::string& s) noexcept
{
    std::uint64_t h = fnv1a_init();
    for (const char c : s) {
        fnv1a_mix(h, static_cast<std::uint8_t>(c));
    }
    return h;
}

std::uint64_t fnv1a_hash(const std::vector<std::uint8_t>& bytes) noexcept
{
    std::uint64_t h = fnv1a_init();
    for (const std::uint8_t b : bytes) {
        fnv1a_mix(h, b);
    }
    return h;
}

disk_store disk_store::from_env()
{
    const char* dir = std::getenv("DVAFS_CACHE_DIR");
    return dir != nullptr && dir[0] != '\0' ? disk_store(dir)
                                            : disk_store();
}

std::string disk_store::path_for(const std::string& kind,
                                 const std::string& key) const
{
    std::ostringstream os;
    os << dir_ << '/' << kind << '/' << std::hex << fnv1a_hash(key)
       << ".bin";
    return os.str();
}

std::optional<std::vector<std::uint8_t>>
disk_store::load(const std::string& kind, const std::string& key) const
{
    if (!enabled()) {
        return std::nullopt;
    }
    std::vector<std::uint8_t> raw;
    try {
        std::ifstream in(path_for(kind, key),
                         std::ios::binary | std::ios::ate);
        if (!in) {
            return std::nullopt;
        }
        const std::streamoff size = in.tellg();
        if (size < 0) {
            return std::nullopt;
        }
        raw.resize(static_cast<std::size_t>(size));
        in.seekg(0);
        in.read(reinterpret_cast<char*>(raw.data()),
                static_cast<std::streamsize>(raw.size()));
        if (!in) {
            return std::nullopt;
        }
    } catch (...) {
        return std::nullopt;
    }

    // Frame checks: any mismatch -- wrong magic, a format bump, a
    // filename-hash collision (embedded key differs), bit rot (checksum)
    // or plain truncation -- reads as a miss.
    try {
        byte_reader r(raw);
        if (r.u32() != store_magic
            || r.u32() != store_format_version) {
            return std::nullopt;
        }
        if (r.str() != kind || r.str() != key) {
            return std::nullopt;
        }
        const std::uint64_t checksum = r.u64();
        std::vector<std::uint8_t> payload = r.bytes_u8();
        if (!r.done() || fnv1a_hash(payload) != checksum) {
            return std::nullopt;
        }
        return payload;
    } catch (const serial_error&) {
        return std::nullopt;
    }
}

bool disk_store::store(const std::string& kind, const std::string& key,
                       const std::vector<std::uint8_t>& payload) const
{
    if (!enabled()) {
        return false;
    }
    byte_writer w;
    w.u32(store_magic);
    w.u32(store_format_version);
    w.str(kind);
    w.str(key);
    w.u64(fnv1a_hash(payload));
    w.bytes_u8(payload);

    try {
        namespace fs = std::filesystem;
        const fs::path target(path_for(kind, key));
        fs::create_directories(target.parent_path());
        // Unique temp name in the *same* directory (rename must not cross
        // filesystems): pid + a process-local counter.
        static std::atomic<std::uint64_t> seq{0};
        std::ostringstream tmp_name;
        tmp_name << target.filename().string() << ".tmp."
                 << static_cast<unsigned long>(::getpid()) << "."
                 << seq.fetch_add(1, std::memory_order_relaxed);
        const fs::path tmp = target.parent_path() / tmp_name.str();
        {
            std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
            if (!out) {
                return false;
            }
            const auto& bytes = w.data();
            out.write(reinterpret_cast<const char*>(bytes.data()),
                      static_cast<std::streamsize>(bytes.size()));
            if (!out) {
                out.close();
                fs::remove(tmp);
                return false;
            }
        }
        // Atomic publication: concurrent writers race renames, and the
        // last complete file wins; a reader sees old or new, never torn.
        std::error_code ec;
        fs::rename(tmp, target, ec);
        if (ec) {
            fs::remove(tmp, ec);
            return false;
        }
        return true;
    } catch (...) {
        return false;
    }
}

} // namespace dvafs
