// Minimal byte-level (de)serialization for the on-disk cache blobs.
//
// Fixed little-endian layouts, no framing, no reflection: each cache kind
// (compiled schedules, mode frontiers, measurement states, teacher sweeps)
// hand-writes its fields through byte_writer and hand-reads them back
// through byte_reader. Doubles travel as raw IEEE-754 bit patterns, so a
// round trip is bit-exact -- the property every "warm result equals cold
// result" check in tests/test_disk_store.cpp leans on. byte_reader throws
// serial_error on any overrun or malformed length, which the disk-store
// loaders catch and convert into "entry absent, re-measure".

#pragma once

#include <bit>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace dvafs {

class serial_error : public std::runtime_error {
public:
    explicit serial_error(const std::string& what)
        : std::runtime_error("serial: " + what)
    {
    }
};

class byte_writer {
public:
    void u8(std::uint8_t v) { buf_.push_back(v); }

    void u32(std::uint32_t v)
    {
        for (int i = 0; i < 4; ++i) {
            buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
        }
    }

    void u64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i) {
            buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
        }
    }

    void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

    void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

    void str(const std::string& s)
    {
        u64(s.size());
        buf_.insert(buf_.end(), s.begin(), s.end());
    }

    void bytes_u8(const std::vector<std::uint8_t>& v)
    {
        u64(v.size());
        buf_.insert(buf_.end(), v.begin(), v.end());
    }

    void vec_u32(const std::vector<std::uint32_t>& v)
    {
        u64(v.size());
        for (const std::uint32_t x : v) {
            u32(x);
        }
    }

    void vec_u64(const std::vector<std::uint64_t>& v)
    {
        u64(v.size());
        for (const std::uint64_t x : v) {
            u64(x);
        }
    }

    void vec_f64(const std::vector<double>& v)
    {
        u64(v.size());
        for (const double x : v) {
            f64(x);
        }
    }

    const std::vector<std::uint8_t>& data() const noexcept { return buf_; }
    std::vector<std::uint8_t> take() { return std::move(buf_); }

private:
    std::vector<std::uint8_t> buf_;
};

class byte_reader {
public:
    explicit byte_reader(const std::vector<std::uint8_t>& buf) noexcept
        : buf_(buf)
    {
    }

    std::uint8_t u8()
    {
        need(1);
        return buf_[pos_++];
    }

    std::uint32_t u32()
    {
        need(4);
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i) {
            v |= static_cast<std::uint32_t>(buf_[pos_ + i]) << (8 * i);
        }
        pos_ += 4;
        return v;
    }

    std::uint64_t u64()
    {
        need(8);
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i) {
            v |= static_cast<std::uint64_t>(buf_[pos_ + i]) << (8 * i);
        }
        pos_ += 8;
        return v;
    }

    std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

    double f64() { return std::bit_cast<double>(u64()); }

    std::string str()
    {
        const std::size_t n = len();
        std::string s(reinterpret_cast<const char*>(buf_.data() + pos_), n);
        pos_ += n;
        return s;
    }

    std::vector<std::uint8_t> bytes_u8()
    {
        const std::size_t n = len();
        std::vector<std::uint8_t> v(buf_.begin()
                                        + static_cast<std::ptrdiff_t>(pos_),
                                    buf_.begin()
                                        + static_cast<std::ptrdiff_t>(pos_
                                                                      + n));
        pos_ += n;
        return v;
    }

    std::vector<std::uint32_t> vec_u32()
    {
        const std::size_t n = len_of(4);
        std::vector<std::uint32_t> v(n);
        for (std::size_t i = 0; i < n; ++i) {
            v[i] = u32();
        }
        return v;
    }

    std::vector<std::uint64_t> vec_u64()
    {
        const std::size_t n = len_of(8);
        std::vector<std::uint64_t> v(n);
        for (std::size_t i = 0; i < n; ++i) {
            v[i] = u64();
        }
        return v;
    }

    std::vector<double> vec_f64()
    {
        const std::size_t n = len_of(8);
        std::vector<double> v(n);
        for (std::size_t i = 0; i < n; ++i) {
            v[i] = f64();
        }
        return v;
    }

    bool done() const noexcept { return pos_ == buf_.size(); }
    std::size_t remaining() const noexcept { return buf_.size() - pos_; }

private:
    void need(std::size_t n) const
    {
        if (buf_.size() - pos_ < n) {
            throw serial_error("truncated buffer");
        }
    }

    // A length prefix, bounded by the bytes actually left so a corrupt
    // length cannot drive a multi-GB allocation before the overrun throws.
    std::size_t len()
    {
        const std::uint64_t n = u64();
        if (n > remaining()) {
            throw serial_error("length exceeds buffer");
        }
        return static_cast<std::size_t>(n);
    }

    std::size_t len_of(std::size_t elem_size)
    {
        const std::uint64_t n = u64();
        if (n > remaining() / elem_size) {
            throw serial_error("length exceeds buffer");
        }
        return static_cast<std::size_t>(n);
    }

    const std::vector<std::uint8_t>& buf_;
    std::size_t pos_ = 0;
};

} // namespace dvafs
