// Deterministic pseudo-random number generation for simulations and tests.
//
// All stochastic processes in this repository (input vectors for switching-
// activity estimation, synthetic network weights, synthetic datasets) draw
// from this PCG32 generator so that every experiment is reproducible from a
// seed.

#pragma once

#include <cstdint>

namespace dvafs {

// The full generator position, for suspending and resuming a stream
// mid-measurement (the frontier cache's prefix extension persists these
// to disk). Restoring a snapshot reproduces the uniform stream exactly;
// the Box-Muller spare is deliberately not captured -- restore() clears
// it, so resumable streams must draw only uniform values (which the
// operand streams do).
struct pcg32_state {
    std::uint64_t state = 0;
    std::uint64_t inc = 0;
};

// PCG32 (Permuted Congruential Generator, XSH-RR variant).
// Small, fast, and statistically far better than std::minstd / rand().
class pcg32 {
public:
    explicit pcg32(std::uint64_t seed = 0x853c49e6748fea9bULL,
                   std::uint64_t stream = 0xda3e39cb94b95bdbULL) noexcept
    {
        reseed(seed, stream);
    }

    void reseed(std::uint64_t seed,
                std::uint64_t stream = 0xda3e39cb94b95bdbULL) noexcept
    {
        state_ = 0U;
        inc_ = (stream << 1U) | 1U;
        next_u32();
        state_ += seed;
        next_u32();
    }

    // Uniform 32-bit value.
    std::uint32_t next_u32() noexcept
    {
        const std::uint64_t old = state_;
        state_ = old * 6364136223846793005ULL + inc_;
        const auto xorshifted =
            static_cast<std::uint32_t>(((old >> 18U) ^ old) >> 27U);
        const auto rot = static_cast<std::uint32_t>(old >> 59U);
        return (xorshifted >> rot) | (xorshifted << ((32U - rot) & 31U));
    }

    std::uint64_t next_u64() noexcept
    {
        return (static_cast<std::uint64_t>(next_u32()) << 32U) | next_u32();
    }

    // Uniform in [0, bound). Unbiased via rejection sampling.
    std::uint32_t bounded(std::uint32_t bound) noexcept;

    // Uniform integer in [lo, hi] inclusive.
    std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept;

    // Uniform double in [0, 1).
    double uniform() noexcept
    {
        return static_cast<double>(next_u32()) * (1.0 / 4294967296.0);
    }

    // Uniform double in [lo, hi).
    double uniform(double lo, double hi) noexcept
    {
        return lo + (hi - lo) * uniform();
    }

    // Standard normal via Box-Muller (one value per call; spare cached).
    double gaussian() noexcept;

    // Normal with given mean / standard deviation.
    double gaussian(double mean, double stddev) noexcept
    {
        return mean + stddev * gaussian();
    }

    // True with probability p.
    bool bernoulli(double p) noexcept { return uniform() < p; }

    // -- suspend / resume ----------------------------------------------------
    pcg32_state snapshot() const noexcept { return {state_, inc_}; }

    void restore(const pcg32_state& s) noexcept
    {
        state_ = s.state;
        inc_ = s.inc;
        has_spare_ = false;
    }

private:
    std::uint64_t state_ = 0;
    std::uint64_t inc_ = 0;
    bool has_spare_ = false;
    double spare_ = 0.0;
};

} // namespace dvafs
