#include "util/stats.h"

#include <algorithm>

namespace dvafs {

void running_stats::add(double x) noexcept
{
    ++n_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

void error_stats::add(double exact, double approx) noexcept
{
    ++n_;
    const double e = approx - exact;
    if (e != 0.0) {
        ++nonzero_;
    }
    sq_sum_ += e * e;
    err_sum_ += e;
    abs_sum_ += std::abs(e);
    max_abs_ = std::max(max_abs_, std::abs(e));
}

} // namespace dvafs
