// Versioned on-disk cache shared by a fleet of planner processes.
//
// The three expensive measurement caches (compiled schedules, mode
// frontiers + their resumable measurement states, teacher sweeps) persist
// their entries here so cold-start-to-first-replan stops paying seconds of
// gate-level sweeps in every new process. Design rules:
//
//  * Opt-in: the store root is the DVAFS_CACHE_DIR environment variable;
//    unset (or any filesystem failure) means every call degrades to a
//    cache miss and the caller re-measures. Persistence is an
//    optimization, never a correctness dependency.
//  * Content-keyed: entries live at <dir>/<kind>/<fnv1a(key)>.bin, and the
//    full key string is embedded in the file and verified on load, so a
//    filename-hash collision reads as a miss instead of the wrong entry.
//    Keys must therefore identify the content exactly (the reason
//    frontier_config::key serializes doubles as hexfloat).
//  * Self-checking: a magic, a store-format version, the kind, the key and
//    an FNV-1a payload checksum frame every file. Truncated, corrupt,
//    version-bumped or mismatched files load as std::nullopt -- silently
//    re-measured, never a crash (tests/test_disk_store.cpp).
//  * Quarantine, not re-read: a file that fails integrity validation
//    (magic, format version, checksum, truncation) is renamed to
//    <name>.bad so the corrupt entry is re-measured exactly once instead
//    of on every process start; a filename-hash collision (valid frame,
//    different embedded key) is someone else's live entry and is left
//    alone. Quarantined files are counted in the process-wide stats.
//  * Bounded retry with backoff: transient I/O failures (reported by the
//    fault hook below, or a failed read/write of an existing file) are
//    retried up to max_retries times with a short linearly growing sleep
//    before degrading to a miss. ENOSPC-class failures are terminal --
//    retrying a full disk only burns time.
//  * Atomic publication: writes go to a unique temp file in the same
//    directory and are renamed into place, so concurrent writers (or a
//    crash mid-write) leave either the old entry or one complete new
//    entry, never a torn file. Per-process races are additionally
//    serialized by the callers' single-flight latches (frontier_cache).
//
// Fault injection: the streaming runtime's fault harness
// (runtime/fault_injector.h) installs a process-wide disk_fault_hook that
// every load/store consults, so deterministic tests can script slow
// reads, corrupt entries, transient I/O errors and ENOSPC without
// touching a real filesystem knob. The hook is read through an atomic
// pointer; install/clear it only while no other thread is in the store.
//
// Layout and invalidation rules are documented in docs/bench_schema.md and
// the README's "Planning pipeline" section.

#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace dvafs {

// FNV-1a over a string; the filename hash and payload checksum primitive.
std::uint64_t fnv1a_hash(const std::string& s) noexcept;
std::uint64_t fnv1a_hash(const std::vector<std::uint8_t>& bytes) noexcept;

// -- fault injection ----------------------------------------------------------

enum class disk_op : std::uint8_t { load = 0, store = 1 };

// What the fault hook may inject into one load/store attempt:
//  * slow_read  -- the hook itself stalls (wall clock only; reporting-safe
//                  because measured time never feeds back into decisions);
//  * corrupt    -- load only: the raw bytes are bit-flipped before the
//                  frame checks, driving the checksum/quarantine path;
//  * transient  -- the attempt fails as a retriable I/O error (the store
//                  retries with backoff up to disk_store::max_retries);
//  * enospc     -- store only: the write fails terminally (no retry).
enum class disk_fault : std::uint8_t {
    none = 0,
    slow_read,
    corrupt,
    transient,
    enospc,
};

const char* to_string(disk_fault f) noexcept;

// Consulted once per physical attempt (so a script can fail an operation
// twice and let the third retry through). Implementations must be
// thread-safe: loads and stores run from measurement worker threads.
class disk_fault_hook {
public:
    virtual ~disk_fault_hook() = default;
    virtual disk_fault on_disk_op(disk_op op, const std::string& kind,
                                  const std::string& key) = 0;
};

// Process-wide hook (nullptr = no faults). Returns the previous hook.
disk_fault_hook* set_disk_fault_hook(disk_fault_hook* hook) noexcept;
disk_fault_hook* get_disk_fault_hook() noexcept;

// RAII installer for tests/benches: installs on construction, restores
// the previous hook on destruction.
class scoped_disk_fault_hook {
public:
    explicit scoped_disk_fault_hook(disk_fault_hook* hook)
        : prev_(set_disk_fault_hook(hook))
    {
    }
    ~scoped_disk_fault_hook() { set_disk_fault_hook(prev_); }
    scoped_disk_fault_hook(const scoped_disk_fault_hook&) = delete;
    scoped_disk_fault_hook& operator=(const scoped_disk_fault_hook&) =
        delete;

private:
    disk_fault_hook* prev_;
};

// -- stats --------------------------------------------------------------------

// Process-wide store health counters (atomic: loads/stores run from
// worker threads). Snapshot with disk_store::stats(), zero with
// disk_store::reset_stats() at the top of a test.
struct disk_store_stats {
    std::uint64_t loads = 0;          // load() calls on an enabled store
    std::uint64_t hits = 0;           // loads returning a payload
    std::uint64_t stores = 0;         // store() calls on an enabled store
    std::uint64_t store_failures = 0; // stores that returned false
    std::uint64_t quarantined = 0;    // files renamed to <name>.bad
    std::uint64_t retries = 0;        // transient-failure retry attempts
    std::uint64_t faults_injected = 0; // hook verdicts != none
};

class disk_store {
public:
    // Bounded retry-with-backoff for transient I/O failures: attempt
    // max_retries + 1 times, sleeping attempt * retry_backoff_ms between
    // tries. Small on purpose -- the store is an optimization and a miss
    // is always safe.
    static constexpr int max_retries = 2;
    static constexpr int retry_backoff_ms = 1;

    // Disabled store: every load misses, every store is a no-op.
    disk_store() = default;

    // Store rooted at `dir` ("" = disabled). The directory is created
    // lazily on the first write.
    explicit disk_store(std::string dir) : dir_(std::move(dir)) {}

    // Reads DVAFS_CACHE_DIR at call time (not process start), so tests can
    // point different cache instances at different roots.
    static disk_store from_env();

    bool enabled() const noexcept { return !dir_.empty(); }
    const std::string& dir() const noexcept { return dir_; }

    // The payload stored under (kind, key), or nullopt when the store is
    // disabled, the entry is absent, or the file fails any integrity check
    // (magic, version, kind, embedded key, checksum). Integrity failures
    // quarantine the file (see the header comment). Never throws.
    std::optional<std::vector<std::uint8_t>>
    load(const std::string& kind, const std::string& key) const;

    // Atomically publishes `payload` under (kind, key). Best effort:
    // returns false (and leaves any previous entry intact) on any
    // filesystem failure. Transient failures are retried with backoff;
    // ENOSPC is terminal. Never throws.
    bool store(const std::string& kind, const std::string& key,
               const std::vector<std::uint8_t>& payload) const;

    // The path an entry lives at (valid even when the file is absent).
    std::string path_for(const std::string& kind,
                         const std::string& key) const;

    // Process-wide counters (all enabled stores share them).
    static disk_store_stats stats() noexcept;
    static void reset_stats() noexcept;

private:
    std::string dir_;
};

} // namespace dvafs
