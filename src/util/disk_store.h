// Versioned on-disk cache shared by a fleet of planner processes.
//
// The three expensive measurement caches (compiled schedules, mode
// frontiers + their resumable measurement states, teacher sweeps) persist
// their entries here so cold-start-to-first-replan stops paying seconds of
// gate-level sweeps in every new process. Design rules:
//
//  * Opt-in: the store root is the DVAFS_CACHE_DIR environment variable;
//    unset (or any filesystem failure) means every call degrades to a
//    cache miss and the caller re-measures. Persistence is an
//    optimization, never a correctness dependency.
//  * Content-keyed: entries live at <dir>/<kind>/<fnv1a(key)>.bin, and the
//    full key string is embedded in the file and verified on load, so a
//    filename-hash collision reads as a miss instead of the wrong entry.
//    Keys must therefore identify the content exactly (the reason
//    frontier_config::key serializes doubles as hexfloat).
//  * Self-checking: a magic, a store-format version, the kind, the key and
//    an FNV-1a payload checksum frame every file. Truncated, corrupt,
//    version-bumped or mismatched files load as std::nullopt -- silently
//    re-measured, never a crash (tests/test_disk_store.cpp).
//  * Atomic publication: writes go to a unique temp file in the same
//    directory and are renamed into place, so concurrent writers (or a
//    crash mid-write) leave either the old entry or one complete new
//    entry, never a torn file. Per-process races are additionally
//    serialized by the callers' single-flight latches (frontier_cache).
//
// Layout and invalidation rules are documented in docs/bench_schema.md and
// the README's "Planning pipeline" section.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace dvafs {

// FNV-1a over a string; the filename hash and payload checksum primitive.
std::uint64_t fnv1a_hash(const std::string& s) noexcept;
std::uint64_t fnv1a_hash(const std::vector<std::uint8_t>& bytes) noexcept;

class disk_store {
public:
    // Disabled store: every load misses, every store is a no-op.
    disk_store() = default;

    // Store rooted at `dir` ("" = disabled). The directory is created
    // lazily on the first write.
    explicit disk_store(std::string dir) : dir_(std::move(dir)) {}

    // Reads DVAFS_CACHE_DIR at call time (not process start), so tests can
    // point different cache instances at different roots.
    static disk_store from_env();

    bool enabled() const noexcept { return !dir_.empty(); }
    const std::string& dir() const noexcept { return dir_; }

    // The payload stored under (kind, key), or nullopt when the store is
    // disabled, the entry is absent, or the file fails any integrity check
    // (magic, version, kind, embedded key, checksum). Never throws.
    std::optional<std::vector<std::uint8_t>>
    load(const std::string& kind, const std::string& key) const;

    // Atomically publishes `payload` under (kind, key). Best effort:
    // returns false (and leaves any previous entry intact) on any
    // filesystem failure. Never throws.
    bool store(const std::string& kind, const std::string& key,
               const std::vector<std::uint8_t>& payload) const;

    // The path an entry lives at (valid even when the file is absent).
    std::string path_for(const std::string& kind,
                         const std::string& key) const;

private:
    std::string dir_;
};

} // namespace dvafs
