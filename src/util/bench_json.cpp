#include "util/bench_json.h"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace dvafs {

namespace {

std::string find_flag_value(int argc, char** argv, const std::string& flag)
{
    for (int i = 1; i < argc; ++i) {
        if (argv[i] == flag) {
            if (i + 1 >= argc) {
                throw std::invalid_argument(flag + ": missing value");
            }
            return argv[i + 1];
        }
    }
    return {};
}

std::string json_escape(const std::string& s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default: out += c; break;
        }
    }
    return out;
}

std::string json_number(double v)
{
    if (!std::isfinite(v)) {
        return "null"; // JSON has no inf/nan
    }
    std::ostringstream os;
    os.precision(std::numeric_limits<double>::max_digits10);
    os << v;
    return os.str();
}

} // namespace

bench_reporter::bench_reporter(std::string bench, int argc, char** argv)
    : bench_(std::move(bench)),
      path_(find_flag_value(argc, argv, "--json"))
{
    const std::string suffix =
        find_flag_value(argc, argv, "--bench-suffix");
    if (!suffix.empty()) {
        bench_ += "." + suffix;
    }
}

void bench_reporter::add(const std::string& metric, double value,
                         const std::string& unit)
{
    records_.push_back({metric, value, unit});
}

bool bench_reporter::write() const
{
    if (path_.empty()) {
        return true;
    }
    std::ofstream out(path_);
    if (!out) {
        std::cerr << bench_ << ": cannot write " << path_ << "\n";
        return false;
    }
    out << "[\n";
    for (std::size_t i = 0; i < records_.size(); ++i) {
        const bench_record& r = records_[i];
        out << "  {\"bench\": \"" << json_escape(bench_)
            << "\", \"metric\": \"" << json_escape(r.metric)
            << "\", \"value\": " << json_number(r.value)
            << ", \"unit\": \"" << json_escape(r.unit)
            << "\", \"isa\": \"" << json_escape(isa_) << "\"}"
            << (i + 1 < records_.size() ? ",\n" : "\n");
    }
    out << "]\n";
    return static_cast<bool>(out);
}

double bench_flag_double(int argc, char** argv, const std::string& name,
                         double fallback)
{
    const std::string raw = find_flag_value(argc, argv, "--" + name);
    if (raw.empty()) {
        return fallback;
    }
    char* end = nullptr;
    const double v = std::strtod(raw.c_str(), &end);
    if (end == raw.c_str() || *end != '\0') {
        throw std::invalid_argument("--" + name + ": bad number " + raw);
    }
    return v;
}

std::string bench_flag_string(int argc, char** argv,
                              const std::string& name,
                              const std::string& fallback)
{
    const std::string raw = find_flag_value(argc, argv, "--" + name);
    return raw.empty() ? fallback : raw;
}

} // namespace dvafs
