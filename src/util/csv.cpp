#include "util/csv.h"

#include "util/table.h"

#include <stdexcept>

namespace dvafs {

std::string csv_escape(const std::string& cell)
{
    const bool needs_quotes =
        cell.find_first_of(",\"\n\r") != std::string::npos;
    if (!needs_quotes) {
        return cell;
    }
    std::string out = "\"";
    for (const char c : cell) {
        if (c == '"') {
            out += '"';
        }
        out += c;
    }
    out += '"';
    return out;
}

csv_writer::csv_writer(const std::string& path,
                       std::vector<std::string> headers)
    : path_(path), out_(path), columns_(headers.size())
{
    if (!out_) {
        throw std::runtime_error("csv_writer: cannot open " + path);
    }
    for (std::size_t i = 0; i < headers.size(); ++i) {
        if (i) {
            out_ << ',';
        }
        out_ << csv_escape(headers[i]);
    }
    out_ << '\n';
}

void csv_writer::add_row(const std::vector<std::string>& cells)
{
    for (std::size_t i = 0; i < columns_; ++i) {
        if (i) {
            out_ << ',';
        }
        if (i < cells.size()) {
            out_ << csv_escape(cells[i]);
        }
    }
    out_ << '\n';
}

void csv_writer::add_row_numeric(const std::vector<double>& cells)
{
    std::vector<std::string> row;
    row.reserve(cells.size());
    for (const double v : cells) {
        row.push_back(fmt_double(v, 6));
    }
    add_row(row);
}

} // namespace dvafs
