// Convolution kernel generator for the SIMD processor -- the benchmark
// workload of the paper's Sec. III-B ("a large convolution kernel").
//
// The kernel computes a 1-D convolution out[i] = sum_k w[k] * in[i+k] over
// SW outputs per tile, with the K weights pre-broadcast into vector
// registers and the inner loop fully unrolled (vload + vmac per tap), which
// yields the MAC-dominated instruction mix of a tuned vector DSP loop.

#pragma once

#include "simd/isa.h"
#include "simd/processor.h"

#include <cstdint>
#include <vector>

namespace dvafs {

struct conv_kernel_spec {
    int taps = 5;       // K
    int tiles = 64;     // output tiles of SW elements each
    int in_base = 0;    // input base address (word index)
    int w_base = 4096;  // weight base address
    int out_base = 6144; // output base address
    int out_shift = 6;  // accumulator >> shift before saturation
};

// Builds the program for the given spec and SIMD width (the pointer stride
// per tile equals SW). Register conventions:
//   r1 input pointer, r2 output pointer, r3 tile counter, r4 scratch.
//   v0..v(K-1) broadcast weights, v6 data, v7 result. a0 accumulator.
program make_conv1d_program(const conv_kernel_spec& spec, int sw);

// Fills memory with a deterministic test pattern (inputs and weights) whose
// per-lane values fit the given precision; returns the expected outputs
// computed with plain arithmetic for verification.
struct conv_workload {
    std::vector<std::int32_t> inputs;  // one value per packed word position
    std::vector<std::int32_t> weights;
    std::vector<std::int32_t> expected; // per output word position
};

conv_workload prepare_conv_workload(simd_processor& proc,
                                    const conv_kernel_spec& spec,
                                    sw_mode mode, int das_bits,
                                    std::uint64_t seed = 99);

// Reads back and checks outputs; returns number of mismatching words.
int check_conv_outputs(const simd_processor& proc,
                       const conv_kernel_spec& spec, sw_mode mode,
                       const conv_workload& w);

} // namespace dvafs
