// Tiny text assembler for the SIMD ISA: one instruction per line, labels
// with a trailing colon, '#' comments. Branch targets may be labels or
// numeric offsets. Example:
//
//     li r1, 0
//   loop:
//     vload v0, r1, 0
//     vmac a0, v0, v1
//     addi r1, r1, 8
//     addi r2, r2, -1
//     bnez r2, loop
//     vsat v2, a0, 4
//     halt

#pragma once

#include "simd/isa.h"

#include <string>

namespace dvafs {

// Throws std::runtime_error with a line-numbered message on syntax errors.
program assemble(const std::string& source);

// Round-trip helper: renders a program back to assembly text.
std::string disassemble(const program& prog);

} // namespace dvafs
