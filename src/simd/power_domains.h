// Power-domain configuration of the SIMD processor (paper Sec. III-B):
// memories on a fixed-voltage domain V_mem, control/decode on V_nas, vector
// arithmetic on V_as. The regime (DAS / DVAS / DVAFS) determines frequency
// and the two variable voltages at constant computational throughput.

#pragma once

#include "circuit/tech.h"
#include "mult/dvafs_mult.h"
#include "mult/subword.h"

namespace dvafs {

enum class scaling_regime : std::uint8_t { das, dvas, dvafs };
const char* to_string(scaling_regime r) noexcept;

struct domain_voltages {
    double v_mem = 1.1;
    double v_nas = 1.1;
    double v_as = 1.1;
    double f_mhz = 500.0;
    sw_mode mode = sw_mode::w1x16;
    int das_bits = 16; // per-lane effective precision
};

// Computes the operating point for a regime at constant word throughput
// `throughput_mops` (words/s; 1xW full precision runs at throughput_mops
// MHz with one word per cycle).
//
//  * DAS:   f and all voltages stay nominal; only activity drops.
//  * DVAS:  f nominal; V_as drops per the multiplier's active-cone slack.
//  * DVAFS: subword mode with N = lanes; f = f_nom / N; V_as from the lane
//           critical path at the longer period; V_nas from the N-fold
//           relaxed control-path timing. V_mem always stays nominal.
//
// `mult` supplies the active-cone critical paths (the as-domain timing).
domain_voltages make_operating_point(scaling_regime regime, sw_mode mode,
                                     int das_bits,
                                     const dvafs_multiplier& mult,
                                     const tech_model& tech,
                                     double throughput_mops = 500.0);

} // namespace dvafs
