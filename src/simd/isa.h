// Instruction set of the DVAFS-compatible SIMD RISC vector processor
// (paper Sec. III-B: a parametric-width vector machine built in an ASIP
// design tool, here reproduced as a cycle-level simulator).
//
// The machine has:
//   * 8 scalar registers r0..r7 (32 b; r0 reads as zero),
//   * 8 vector registers v0..v7 (SW lanes x 16 b packed subwords),
//   * 4 vector accumulators a0..a3 (SW lanes x 32 b),
//   * a banked data memory of 16-bit words (one bank per lane).
// Vector arithmetic operates lane-wise in the current subword mode
// (1x16 / 2x8 / 4x4), so one 16-bit lane slot carries N packed words.

#pragma once

#include "mult/subword.h"

#include <cstdint>
#include <string>
#include <vector>

namespace dvafs {

enum class opcode : std::uint8_t {
    nop,
    halt,
    // scalar
    li,    // rd = imm
    addi,  // rd = ra + imm
    lw,    // rd = mem[ra + imm] (single 16-bit word, sign-extended)
    bnez,  // if (ra != 0) pc += imm
    // vector
    vload,  // vd = mem[ra + imm .. +SW)
    vstore, // mem[ra + imm ..) = vd
    vbcast, // vd lanes all = ra (packed per current mode)
    vadd,   // vd = va + vb   (lane-wise, wrapping)
    vmul,   // vd = lane products, truncated to lane width
    vmac,   // ad += va * vb  (lane-wise, 2x-width accumulate, saturating)
    vclr,   // ad = 0
    vsat,   // vd = saturate(ad >> imm) per lane
    setmode // switch subword mode: imm = 0 (1x16), 1 (2x8), 2 (4x4)
};

const char* to_string(opcode op) noexcept;

struct instruction {
    opcode op = opcode::nop;
    std::uint8_t rd = 0; // destination register index (r/v/a by opcode)
    std::uint8_t ra = 0;
    std::uint8_t rb = 0;
    std::int32_t imm = 0;

    std::string to_string() const;
};

using program = std::vector<instruction>;

// -- instruction builders (keep call sites readable) --------------------------
instruction make_nop();
instruction make_halt();
instruction make_li(int rd, std::int32_t imm);
instruction make_addi(int rd, int ra, std::int32_t imm);
instruction make_lw(int rd, int ra, std::int32_t imm);
instruction make_bnez(int ra, std::int32_t offset);
instruction make_vload(int vd, int ra, std::int32_t imm);
instruction make_vstore(int vd, int ra, std::int32_t imm);
instruction make_vbcast(int vd, int ra);
instruction make_vadd(int vd, int va, int vb);
instruction make_vmul(int vd, int va, int vb);
instruction make_vmac(int ad, int va, int vb);
instruction make_vclr(int ad);
instruction make_vsat(int vd, int ad, std::int32_t shift);
instruction make_setmode(sw_mode m);

// Instruction classification used by the energy model.
bool is_vector_op(opcode op) noexcept;
bool is_memory_op(opcode op) noexcept;
bool is_arith_vector_op(opcode op) noexcept; // vadd/vmul/vmac (as domain)

} // namespace dvafs
