#include "simd/isa.h"

#include <cstdio>

namespace dvafs {

const char* to_string(opcode op) noexcept
{
    switch (op) {
    case opcode::nop: return "nop";
    case opcode::halt: return "halt";
    case opcode::li: return "li";
    case opcode::addi: return "addi";
    case opcode::lw: return "lw";
    case opcode::bnez: return "bnez";
    case opcode::vload: return "vload";
    case opcode::vstore: return "vstore";
    case opcode::vbcast: return "vbcast";
    case opcode::vadd: return "vadd";
    case opcode::vmul: return "vmul";
    case opcode::vmac: return "vmac";
    case opcode::vclr: return "vclr";
    case opcode::vsat: return "vsat";
    case opcode::setmode: return "setmode";
    }
    return "?";
}

std::string instruction::to_string() const
{
    char buf[80];
    switch (op) {
    case opcode::nop:
    case opcode::halt:
        std::snprintf(buf, sizeof buf, "%s", dvafs::to_string(op));
        break;
    case opcode::li:
        std::snprintf(buf, sizeof buf, "li r%d, %d", rd, imm);
        break;
    case opcode::addi:
        std::snprintf(buf, sizeof buf, "addi r%d, r%d, %d", rd, ra, imm);
        break;
    case opcode::lw:
        std::snprintf(buf, sizeof buf, "lw r%d, r%d, %d", rd, ra, imm);
        break;
    case opcode::bnez:
        std::snprintf(buf, sizeof buf, "bnez r%d, %d", ra, imm);
        break;
    case opcode::vload:
        std::snprintf(buf, sizeof buf, "vload v%d, r%d, %d", rd, ra, imm);
        break;
    case opcode::vstore:
        std::snprintf(buf, sizeof buf, "vstore v%d, r%d, %d", rd, ra, imm);
        break;
    case opcode::vbcast:
        std::snprintf(buf, sizeof buf, "vbcast v%d, r%d", rd, ra);
        break;
    case opcode::vadd:
    case opcode::vmul:
        std::snprintf(buf, sizeof buf, "%s v%d, v%d, v%d",
                      dvafs::to_string(op), rd, ra, rb);
        break;
    case opcode::vmac:
        std::snprintf(buf, sizeof buf, "vmac a%d, v%d, v%d", rd, ra, rb);
        break;
    case opcode::vclr:
        std::snprintf(buf, sizeof buf, "vclr a%d", rd);
        break;
    case opcode::vsat:
        std::snprintf(buf, sizeof buf, "vsat v%d, a%d, %d", rd, ra, imm);
        break;
    case opcode::setmode:
        std::snprintf(buf, sizeof buf, "setmode %d", imm);
        break;
    }
    return buf;
}

namespace {

instruction make(opcode op, int rd, int ra, int rb, std::int32_t imm)
{
    instruction i;
    i.op = op;
    i.rd = static_cast<std::uint8_t>(rd);
    i.ra = static_cast<std::uint8_t>(ra);
    i.rb = static_cast<std::uint8_t>(rb);
    i.imm = imm;
    return i;
}

} // namespace

instruction make_nop() { return make(opcode::nop, 0, 0, 0, 0); }
instruction make_halt() { return make(opcode::halt, 0, 0, 0, 0); }
instruction make_li(int rd, std::int32_t imm)
{
    return make(opcode::li, rd, 0, 0, imm);
}
instruction make_addi(int rd, int ra, std::int32_t imm)
{
    return make(opcode::addi, rd, ra, 0, imm);
}
instruction make_lw(int rd, int ra, std::int32_t imm)
{
    return make(opcode::lw, rd, ra, 0, imm);
}
instruction make_bnez(int ra, std::int32_t offset)
{
    return make(opcode::bnez, 0, ra, 0, offset);
}
instruction make_vload(int vd, int ra, std::int32_t imm)
{
    return make(opcode::vload, vd, ra, 0, imm);
}
instruction make_vstore(int vd, int ra, std::int32_t imm)
{
    return make(opcode::vstore, vd, ra, 0, imm);
}
instruction make_vbcast(int vd, int ra)
{
    return make(opcode::vbcast, vd, ra, 0, 0);
}
instruction make_vadd(int vd, int va, int vb)
{
    return make(opcode::vadd, vd, va, vb, 0);
}
instruction make_vmul(int vd, int va, int vb)
{
    return make(opcode::vmul, vd, va, vb, 0);
}
instruction make_vmac(int ad, int va, int vb)
{
    return make(opcode::vmac, ad, va, vb, 0);
}
instruction make_vclr(int ad) { return make(opcode::vclr, ad, 0, 0, 0); }
instruction make_vsat(int vd, int ad, std::int32_t shift)
{
    return make(opcode::vsat, vd, ad, 0, shift);
}
instruction make_setmode(sw_mode m)
{
    return make(opcode::setmode, 0, 0, 0, static_cast<std::int32_t>(m));
}

bool is_vector_op(opcode op) noexcept
{
    switch (op) {
    case opcode::vload:
    case opcode::vstore:
    case opcode::vbcast:
    case opcode::vadd:
    case opcode::vmul:
    case opcode::vmac:
    case opcode::vclr:
    case opcode::vsat:
        return true;
    default:
        return false;
    }
}

bool is_memory_op(opcode op) noexcept
{
    return op == opcode::vload || op == opcode::vstore || op == opcode::lw;
}

bool is_arith_vector_op(opcode op) noexcept
{
    return op == opcode::vadd || op == opcode::vmul || op == opcode::vmac;
}

} // namespace dvafs
