#include "simd/memory.h"

#include <stdexcept>

namespace dvafs {

banked_memory::banked_memory(std::size_t words, int banks)
    : data_(words, 0), banks_(banks)
{
    if (banks < 1) {
        throw std::invalid_argument("banked_memory: need >= 1 bank");
    }
}

void banked_memory::account(int active_bits)
{
    ++accesses_;
    const double vr = params_.vdd / params_.vdd_nom;
    energy_pj_ += (params_.e_fixed_pj
                   + params_.e_bit_pj * static_cast<double>(active_bits))
                  * vr * vr;
}

std::uint16_t banked_memory::read(std::uint32_t addr, int active_bits)
{
    account(active_bits);
    return data_.at(addr);
}

void banked_memory::write(std::uint32_t addr, std::uint16_t value,
                          int active_bits)
{
    account(active_bits);
    data_.at(addr) = value;
}

std::vector<std::uint16_t> banked_memory::read_vector(std::uint32_t base,
                                                      int active_bits)
{
    std::vector<std::uint16_t> out(static_cast<std::size_t>(banks_));
    for (int i = 0; i < banks_; ++i) {
        out[static_cast<std::size_t>(i)] =
            read(base + static_cast<std::uint32_t>(i), active_bits);
    }
    return out;
}

void banked_memory::write_vector(std::uint32_t base,
                                 const std::vector<std::uint16_t>& values,
                                 int active_bits)
{
    if (static_cast<int>(values.size()) != banks_) {
        throw std::invalid_argument("write_vector: width mismatch");
    }
    for (int i = 0; i < banks_; ++i) {
        write(base + static_cast<std::uint32_t>(i),
              values[static_cast<std::size_t>(i)], active_bits);
    }
}

std::uint16_t banked_memory::peek(std::uint32_t addr) const
{
    return data_.at(addr);
}

void banked_memory::poke(std::uint32_t addr, std::uint16_t value)
{
    data_.at(addr) = value;
}

} // namespace dvafs
