// Banked vector data memory with a bit-width-aware access energy model.
//
// One 16-bit bank per SIMD lane; a vector access reads/writes SW consecutive
// word addresses, one per bank. Access energy follows
//     E_access = e_fixed + e_bit * active_bits
// per 16-bit word: the fixed part models row decode and wordline energy,
// the per-bit part models bitline/IO energy that scales with the number of
// *live* data bits. This term is what differentiates DAS (narrow words in
// full-width slots: fewer active bits per access) from DVAFS (N packed
// subwords per slot: same active bits but N words per access), reproducing
// Table II's memory column.

#pragma once

#include "energy/energy_ledger.h"

#include <cstdint>
#include <vector>

namespace dvafs {

struct memory_energy_params {
    double e_fixed_pj = 1.4;  // per 16-bit word access
    double e_bit_pj = 0.35;   // per active data bit
    double vdd = 1.1;         // memory supply (fixed in the SIMD processor)
    double vdd_nom = 1.1;
};

class banked_memory {
public:
    banked_memory(std::size_t words, int banks);

    std::uint16_t read(std::uint32_t addr, int active_bits);
    void write(std::uint32_t addr, std::uint16_t value, int active_bits);

    // Vector access helpers: SW consecutive addresses.
    std::vector<std::uint16_t> read_vector(std::uint32_t base,
                                           int active_bits);
    void write_vector(std::uint32_t base,
                      const std::vector<std::uint16_t>& values,
                      int active_bits);

    // Raw (energy-free) access for test setup and result checking.
    std::uint16_t peek(std::uint32_t addr) const;
    void poke(std::uint32_t addr, std::uint16_t value);

    std::size_t size() const noexcept { return data_.size(); }
    int banks() const noexcept { return banks_; }

    std::uint64_t accesses() const noexcept { return accesses_; }
    double energy_pj() const noexcept { return energy_pj_; }
    void set_energy_params(const memory_energy_params& p) noexcept
    {
        params_ = p;
    }
    const memory_energy_params& energy_params() const noexcept
    {
        return params_;
    }
    void reset_stats() noexcept
    {
        accesses_ = 0;
        energy_pj_ = 0.0;
    }

private:
    void account(int active_bits);

    std::vector<std::uint16_t> data_;
    int banks_;
    memory_energy_params params_;
    std::uint64_t accesses_ = 0;
    double energy_pj_ = 0.0;
};

} // namespace dvafs
