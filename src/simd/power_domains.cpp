#include "simd/power_domains.h"

#include <stdexcept>

namespace dvafs {

const char* to_string(scaling_regime r) noexcept
{
    switch (r) {
    case scaling_regime::das: return "DAS";
    case scaling_regime::dvas: return "DVAS";
    case scaling_regime::dvafs: return "DVAFS";
    }
    return "?";
}

domain_voltages make_operating_point(scaling_regime regime, sw_mode mode,
                                     int das_bits,
                                     const dvafs_multiplier& mult,
                                     const tech_model& tech,
                                     double throughput_mops)
{
    domain_voltages dv;
    dv.v_mem = tech.vdd_nom;
    dv.mode = mode;
    dv.das_bits = das_bits;

    const double f_nom = throughput_mops; // one word/cycle at full precision
    const double period_nom_ps = 1e6 / f_nom;

    if (regime != scaling_regime::dvafs && mode != sw_mode::w1x16) {
        throw std::invalid_argument(
            "make_operating_point: DAS/DVAS use the 1xW datapath");
    }

    switch (regime) {
    case scaling_regime::das:
        dv.f_mhz = f_nom;
        dv.v_nas = tech.vdd_nom;
        dv.v_as = tech.vdd_nom;
        break;
    case scaling_regime::dvas: {
        dv.f_mhz = f_nom;
        dv.v_nas = tech.vdd_nom;
        const double cp = mult.mode_critical_path_ps(
            tech, tech.vdd_nom, sw_mode::w1x16, das_bits);
        dv.v_as = tech.solve_voltage(period_nom_ps / cp);
        break;
    }
    case scaling_regime::dvafs: {
        const int n = lane_count(mode);
        dv.f_mhz = f_nom / static_cast<double>(n);
        const double period_ps = 1e6 / dv.f_mhz;
        const double cp =
            mult.mode_critical_path_ps(tech, tech.vdd_nom, mode, das_bits);
        dv.v_as = tech.solve_voltage(period_ps / cp);
        // The control path was timed for the nominal period; running N x
        // slower gives it an N-fold delay budget.
        dv.v_nas = tech.solve_voltage(static_cast<double>(n));
        break;
    }
    }
    return dv;
}

} // namespace dvafs
