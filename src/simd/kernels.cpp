#include "simd/kernels.h"

#include "fixedpoint/bitops.h"
#include "util/rng.h"

#include <stdexcept>

namespace dvafs {

program make_conv1d_program(const conv_kernel_spec& spec, int sw)
{
    if (spec.taps < 1 || spec.taps > 5) {
        throw std::invalid_argument(
            "make_conv1d_program: taps must be in [1, 5] (v0..v4)");
    }
    program p;
    // Weight setup: load each tap and broadcast it across the lanes.
    p.push_back(make_li(6, spec.w_base));
    for (int k = 0; k < spec.taps; ++k) {
        p.push_back(make_lw(4, 6, k));
        p.push_back(make_vbcast(k, 4));
    }
    p.push_back(make_li(1, spec.in_base));
    p.push_back(make_li(2, spec.out_base));
    p.push_back(make_li(3, spec.tiles));

    const auto loop_start = static_cast<std::int32_t>(p.size());
    p.push_back(make_vclr(0));
    for (int k = 0; k < spec.taps; ++k) {
        p.push_back(make_vload(6, 1, k));
        p.push_back(make_vmac(0, 6, k));
    }
    p.push_back(make_vsat(7, 0, spec.out_shift));
    p.push_back(make_vstore(7, 2, 0));
    p.push_back(make_addi(1, 1, sw));
    p.push_back(make_addi(2, 2, sw));
    p.push_back(make_addi(3, 3, -1));
    p.push_back(make_bnez(3, loop_start - static_cast<std::int32_t>(
                                 p.size())));
    p.push_back(make_halt());
    return p;
}

conv_workload prepare_conv_workload(simd_processor& proc,
                                    const conv_kernel_spec& spec,
                                    sw_mode mode, int das_bits,
                                    std::uint64_t seed)
{
    const int sw = proc.sw();
    const int n = lane_count(mode);
    const int lb = lane_bits(mode);
    if (das_bits < 1 || das_bits > lb) {
        throw std::invalid_argument("prepare_conv_workload: bad das_bits");
    }
    // DAS data contract: per-lane values use the das_bits MSBs only.
    const int up = lb - das_bits;

    pcg32 rng(seed);
    conv_workload w;
    const int total_in = spec.tiles * sw + spec.taps;

    // Inputs: small values so the packed accumulators never saturate
    // (functional checking concern only; energy does not depend on values).
    std::vector<std::vector<std::int32_t>> in_slots(
        static_cast<std::size_t>(total_in));
    for (int addr = 0; addr < total_in; ++addr) {
        std::vector<std::int32_t> slots(static_cast<std::size_t>(n));
        for (int s = 0; s < n; ++s) {
            slots[static_cast<std::size_t>(s)] = static_cast<std::int32_t>(
                rng.range(-2, 1) << up);
        }
        in_slots[static_cast<std::size_t>(addr)] = slots;
        proc.memory().poke(
            static_cast<std::uint32_t>(spec.in_base + addr),
            pack_lanes(slots, mode));
        for (const std::int32_t v : slots) {
            w.inputs.push_back(v);
        }
    }
    // Weights: one scalar word per tap (vbcast uses the low lane bits).
    for (int k = 0; k < spec.taps; ++k) {
        const auto wv =
            static_cast<std::int32_t>(rng.range(-2, 1) << up);
        w.weights.push_back(wv);
        proc.memory().poke(static_cast<std::uint32_t>(spec.w_base + k),
                           static_cast<std::uint16_t>(to_bits(wv, 16)));
    }

    // Expected outputs, replicating the datapath's saturation order.
    const int pb = 2 * lb;
    for (int o = 0; o < spec.tiles * sw; ++o) {
        for (int s = 0; s < n; ++s) {
            std::int64_t acc = 0;
            for (int k = 0; k < spec.taps; ++k) {
                const std::int64_t prod =
                    static_cast<std::int64_t>(
                        in_slots[static_cast<std::size_t>(o + k)]
                                [static_cast<std::size_t>(s)])
                    * w.weights[static_cast<std::size_t>(k)];
                acc = clamp_signed(acc + prod, pb);
            }
            w.expected.push_back(static_cast<std::int32_t>(
                clamp_signed(acc >> spec.out_shift, lb)));
        }
    }
    return w;
}

int check_conv_outputs(const simd_processor& proc,
                       const conv_kernel_spec& spec, sw_mode mode,
                       const conv_workload& w)
{
    const int sw = proc.sw();
    const int n = lane_count(mode);
    int mismatches = 0;
    for (int o = 0; o < spec.tiles * sw; ++o) {
        const std::uint16_t got = proc.memory().peek(
            static_cast<std::uint32_t>(spec.out_base + o));
        std::vector<std::int32_t> slots(static_cast<std::size_t>(n));
        for (int s = 0; s < n; ++s) {
            slots[static_cast<std::size_t>(s)] =
                w.expected[static_cast<std::size_t>(o * n + s)];
        }
        if (got != pack_lanes(slots, mode)) {
            ++mismatches;
        }
    }
    return mismatches;
}

} // namespace dvafs
