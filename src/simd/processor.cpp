#include "simd/processor.h"

#include "fixedpoint/bitops.h"

#include <cmath>
#include <stdexcept>

namespace dvafs {

double simd_energy_model::activity_divisor(sw_mode mode, int das_bits) const
{
    if (const auto it = activity_override.find({mode, das_bits});
        it != activity_override.end()) {
        return it->second;
    }
    // Fall back to the paper's Table I: k1 for DAS in 1xW mode, k3 for the
    // subword modes (per-cycle activity at full lane precision).
    const auto& table = paper_table1();
    if (mode == sw_mode::w1x16) {
        return interpolate_k1(table, das_bits);
    }
    const int lane_bits_full = 16 / lane_count(mode);
    const double k3 = k_for_bits(table, lane_bits_full).k3;
    if (das_bits >= lane_bits_full) {
        return k3;
    }
    // DAS inside a subword mode: compose the subword divisor with the
    // relative DAS divisor of the reduced lane precision, mapped onto the
    // 16-bit table through the lane-relative precision.
    const double eff_bits = 16.0 * das_bits / lane_bits_full;
    return k3 * interpolate_k1(table, eff_bits)
           / interpolate_k1(table, 16.0);
}

simd_processor::simd_processor(int sw, std::size_t memory_words,
                               simd_energy_model energy)
    : sw_(sw), mem_(memory_words, sw), energy_(energy)
{
    if (sw < 1 || sw > 1024) {
        throw std::invalid_argument("simd_processor: bad SIMD width");
    }
    mem_.set_energy_params(energy_.mem);
    vregs_.assign(8, std::vector<std::uint16_t>(
                         static_cast<std::size_t>(sw), 0));
    accs_.assign(4, std::vector<std::uint32_t>(
                        static_cast<std::size_t>(sw), 0));
}

void simd_processor::set_operating_point(const domain_voltages& dv)
{
    dv_ = dv;
    memory_energy_params mp = energy_.mem;
    mp.vdd = dv.v_mem;
    mem_.set_energy_params(mp);
}

void simd_processor::load_program(program p)
{
    prog_ = std::move(p);
    pc_ = 0;
    halted_ = false;
}

void simd_processor::reset_stats()
{
    stats_ = simd_stats{};
    mem_.reset_stats();
}

int simd_processor::active_bits() const noexcept
{
    return lane_count(dv_.mode) * dv_.das_bits;
}

const simd_stats& simd_processor::run(std::uint64_t max_cycles)
{
    const double mem_before_pj = mem_.energy_pj();
    while (!halted_) {
        if (pc_ < 0 || pc_ >= static_cast<std::int64_t>(prog_.size())) {
            throw std::runtime_error("simd_processor: PC out of program");
        }
        if (stats_.cycles >= max_cycles) {
            throw std::runtime_error("simd_processor: cycle limit reached");
        }
        const instruction ins = prog_[static_cast<std::size_t>(pc_)];
        ++pc_;
        execute(ins);
        account(ins);
        ++stats_.cycles;
        ++stats_.instructions;
        ++stats_.mix[ins.op];
    }
    // Memory energy accumulated inside banked_memory during this run.
    stats_.ledger.add_pj(power_domain::mem,
                         mem_.energy_pj() - mem_before_pj);
    return stats_;
}

void simd_processor::execute(const instruction& ins)
{
    const auto vec_addr = [&](int ra, std::int32_t imm) {
        const std::int64_t a = regs_[static_cast<std::size_t>(ra)] + imm;
        if (a < 0
            || a + sw_ > static_cast<std::int64_t>(mem_.size())) {
            throw std::runtime_error("simd_processor: vector access OOB");
        }
        return static_cast<std::uint32_t>(a);
    };

    switch (ins.op) {
    case opcode::nop:
        break;
    case opcode::halt:
        halted_ = true;
        break;
    case opcode::li:
        regs_[ins.rd] = ins.imm;
        break;
    case opcode::addi:
        regs_[ins.rd] = regs_[ins.ra] + ins.imm;
        break;
    case opcode::lw: {
        const std::int64_t a = regs_[ins.ra] + ins.imm;
        if (a < 0 || a >= static_cast<std::int64_t>(mem_.size())) {
            throw std::runtime_error("simd_processor: lw OOB");
        }
        regs_[ins.rd] = static_cast<std::int32_t>(
            sign_extend(mem_.read(static_cast<std::uint32_t>(a),
                                  active_bits()),
                        16));
        break;
    }
    case opcode::bnez:
        if (regs_[ins.ra] != 0) {
            pc_ += ins.imm - 1; // pc already advanced past this instruction
        }
        break;
    case opcode::vload: {
        const auto base = vec_addr(ins.ra, ins.imm);
        vregs_[ins.rd] = mem_.read_vector(base, active_bits());
        break;
    }
    case opcode::vstore: {
        const auto base = vec_addr(ins.ra, ins.imm);
        mem_.write_vector(base, vregs_[ins.rd], active_bits());
        break;
    }
    case opcode::vbcast: {
        // Broadcasts the scalar's low lane_bits into every packed subword.
        const int lb = lane_bits(dv_.mode);
        const std::uint64_t lane = to_bits(regs_[ins.ra], lb);
        std::uint64_t word = 0;
        for (int s = 0; s < lane_count(dv_.mode); ++s) {
            word |= lane << (lb * s);
        }
        for (auto& w : vregs_[ins.rd]) {
            w = static_cast<std::uint16_t>(word);
        }
        break;
    }
    case opcode::vadd: {
        const auto& va = vregs_[ins.ra];
        const auto& vb = vregs_[ins.rb];
        auto& vd = vregs_[ins.rd];
        const int lb = lane_bits(dv_.mode);
        for (int l = 0; l < sw_; ++l) {
            std::uint64_t out = 0;
            for (int s = 0; s < lane_count(dv_.mode); ++s) {
                const std::int64_t x = sign_extend(
                    va[static_cast<std::size_t>(l)] >> (lb * s), lb);
                const std::int64_t y = sign_extend(
                    vb[static_cast<std::size_t>(l)] >> (lb * s), lb);
                out |= to_bits(x + y, lb) << (lb * s);
            }
            vd[static_cast<std::size_t>(l)] =
                static_cast<std::uint16_t>(out);
        }
        break;
    }
    case opcode::vmul: {
        const auto& va = vregs_[ins.ra];
        const auto& vb = vregs_[ins.rb];
        auto& vd = vregs_[ins.rd];
        const int lb = lane_bits(dv_.mode);
        for (int l = 0; l < sw_; ++l) {
            const std::uint32_t p =
                subword_multiply(va[static_cast<std::size_t>(l)],
                                 vb[static_cast<std::size_t>(l)],
                                 dv_.mode);
            // Keep the low lane_bits of each product (wrapping multiply).
            std::uint64_t out = 0;
            for (int s = 0; s < lane_count(dv_.mode); ++s) {
                const std::uint64_t lane = (p >> (2 * lb * s)) & low_mask(lb);
                out |= lane << (lb * s);
            }
            vd[static_cast<std::size_t>(l)] =
                static_cast<std::uint16_t>(out);
        }
        break;
    }
    case opcode::vmac: {
        const auto& va = vregs_[ins.ra];
        const auto& vb = vregs_[ins.rb];
        auto& acc = accs_[ins.rd];
        for (int l = 0; l < sw_; ++l) {
            acc[static_cast<std::size_t>(l)] = subword_mac(
                acc[static_cast<std::size_t>(l)],
                va[static_cast<std::size_t>(l)],
                vb[static_cast<std::size_t>(l)], dv_.mode);
        }
        ++stats_.vector_macs;
        stats_.words_processed += static_cast<std::uint64_t>(sw_)
                                  * static_cast<std::uint64_t>(
                                      lane_count(dv_.mode));
        break;
    }
    case opcode::vclr:
        std::fill(accs_[ins.rd].begin(), accs_[ins.rd].end(), 0U);
        break;
    case opcode::vsat: {
        const auto& acc = accs_[ins.ra];
        auto& vd = vregs_[ins.rd];
        const int lb = lane_bits(dv_.mode);
        const int pb = 2 * lb;
        for (int l = 0; l < sw_; ++l) {
            std::uint64_t out = 0;
            for (int s = 0; s < lane_count(dv_.mode); ++s) {
                const std::int64_t wide = sign_extend(
                    acc[static_cast<std::size_t>(l)] >> (pb * s), pb);
                const std::int64_t v =
                    clamp_signed(wide >> ins.imm, lb);
                out |= to_bits(v, lb) << (lb * s);
            }
            vd[static_cast<std::size_t>(l)] =
                static_cast<std::uint16_t>(out);
        }
        break;
    }
    case opcode::setmode:
        dv_.mode = static_cast<sw_mode>(ins.imm);
        break;
    }
}

void simd_processor::account(const instruction& ins)
{
    const double nas_r = dv_.v_nas / 1.1;
    const double as_r = dv_.v_as / 1.1;
    const double nas_sq = nas_r * nas_r;
    const double as_sq = as_r * as_r;
    const double lanes = static_cast<double>(sw_);

    // Fetch/decode and per-lane control fire every cycle.
    stats_.ledger.add_pj(power_domain::nas,
                         (energy_.e_fetch_decode_pj
                          + energy_.e_ctrl_pj_per_lane * lanes)
                             * nas_sq);

    switch (ins.op) {
    case opcode::li:
    case opcode::addi:
    case opcode::bnez:
        stats_.ledger.add_pj(power_domain::nas,
                             energy_.e_scalar_pj * nas_sq);
        break;
    default:
        break;
    }

    if (is_vector_op(ins.op)) {
        stats_.ledger.add_pj(power_domain::nas,
                             energy_.e_vrf_pj_per_lane * lanes * nas_sq);
    }
    if (is_arith_vector_op(ins.op)) {
        const double net =
            sw_ > 8 ? energy_.e_net_pj_per_lane
                          * std::log2(static_cast<double>(sw_) / 8.0)
                    : 0.0;
        const double divisor =
            energy_.activity_divisor(dv_.mode, dv_.das_bits);
        stats_.ledger.add_pj(power_domain::as,
                             (energy_.e_mac_pj_per_lane + net) / divisor
                                 * lanes * as_sq);
    }
    // Memory energy is accounted inside banked_memory (collected in run()).
}

} // namespace dvafs
