#include "simd/assembler.h"

#include <cctype>
#include <map>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace dvafs {

namespace {

struct token_line {
    std::string mnemonic;
    std::vector<std::string> operands;
    int line_no = 0;
};

std::string strip(const std::string& s)
{
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) {
        ++b;
    }
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) {
        --e;
    }
    return s.substr(b, e - b);
}

[[noreturn]] void fail(int line, const std::string& msg)
{
    throw std::runtime_error("assemble: line " + std::to_string(line) + ": "
                             + msg);
}

int parse_reg(const std::string& tok, char prefix, int limit, int line)
{
    if (tok.size() < 2 || tok[0] != prefix) {
        fail(line, "expected register " + std::string(1, prefix)
                       + "N, got '" + tok + "'");
    }
    const int idx = std::atoi(tok.c_str() + 1);
    if (idx < 0 || idx >= limit) {
        fail(line, "register index out of range: " + tok);
    }
    return idx;
}

std::int32_t parse_imm(const std::string& tok, int line)
{
    try {
        std::size_t pos = 0;
        const long v = std::stol(tok, &pos, 0);
        if (pos != tok.size()) {
            fail(line, "bad immediate '" + tok + "'");
        }
        return static_cast<std::int32_t>(v);
    } catch (const std::logic_error&) {
        fail(line, "bad immediate '" + tok + "'");
    }
}

} // namespace

program assemble(const std::string& source)
{
    std::istringstream in(source);
    std::string raw;
    std::vector<token_line> lines;
    std::map<std::string, int> labels;
    int line_no = 0;

    while (std::getline(in, raw)) {
        ++line_no;
        if (const auto hash = raw.find('#'); hash != std::string::npos) {
            raw.resize(hash);
        }
        std::string text = strip(raw);
        if (text.empty()) {
            continue;
        }
        if (text.back() == ':') {
            const std::string label = strip(text.substr(0, text.size() - 1));
            if (label.empty() || labels.count(label)) {
                fail(line_no, "bad or duplicate label '" + label + "'");
            }
            labels[label] = static_cast<int>(lines.size());
            continue;
        }
        token_line tl;
        tl.line_no = line_no;
        std::istringstream ls(text);
        ls >> tl.mnemonic;
        std::string rest;
        std::getline(ls, rest);
        std::istringstream os(rest);
        std::string opnd;
        while (std::getline(os, opnd, ',')) {
            opnd = strip(opnd);
            if (!opnd.empty()) {
                tl.operands.push_back(opnd);
            }
        }
        lines.push_back(std::move(tl));
    }

    program prog;
    for (std::size_t pc = 0; pc < lines.size(); ++pc) {
        const token_line& tl = lines[pc];
        const auto& ops = tl.operands;
        const auto need = [&](std::size_t n) {
            if (ops.size() != n) {
                fail(tl.line_no, tl.mnemonic + " expects "
                                     + std::to_string(n) + " operands");
            }
        };
        const auto branch_offset = [&](const std::string& tok) {
            if (const auto it = labels.find(tok); it != labels.end()) {
                return static_cast<std::int32_t>(it->second)
                       - static_cast<std::int32_t>(pc);
            }
            return parse_imm(tok, tl.line_no);
        };

        const std::string& m = tl.mnemonic;
        if (m == "nop") {
            need(0);
            prog.push_back(make_nop());
        } else if (m == "halt") {
            need(0);
            prog.push_back(make_halt());
        } else if (m == "li") {
            need(2);
            prog.push_back(make_li(parse_reg(ops[0], 'r', 8, tl.line_no),
                                   parse_imm(ops[1], tl.line_no)));
        } else if (m == "addi") {
            need(3);
            prog.push_back(make_addi(parse_reg(ops[0], 'r', 8, tl.line_no),
                                     parse_reg(ops[1], 'r', 8, tl.line_no),
                                     parse_imm(ops[2], tl.line_no)));
        } else if (m == "lw") {
            need(3);
            prog.push_back(make_lw(parse_reg(ops[0], 'r', 8, tl.line_no),
                                   parse_reg(ops[1], 'r', 8, tl.line_no),
                                   parse_imm(ops[2], tl.line_no)));
        } else if (m == "bnez") {
            need(2);
            prog.push_back(make_bnez(parse_reg(ops[0], 'r', 8, tl.line_no),
                                     branch_offset(ops[1])));
        } else if (m == "vload" || m == "vstore") {
            need(3);
            const int vd = parse_reg(ops[0], 'v', 8, tl.line_no);
            const int ra = parse_reg(ops[1], 'r', 8, tl.line_no);
            const std::int32_t imm = parse_imm(ops[2], tl.line_no);
            prog.push_back(m == "vload" ? make_vload(vd, ra, imm)
                                        : make_vstore(vd, ra, imm));
        } else if (m == "vbcast") {
            need(2);
            prog.push_back(
                make_vbcast(parse_reg(ops[0], 'v', 8, tl.line_no),
                            parse_reg(ops[1], 'r', 8, tl.line_no)));
        } else if (m == "vadd" || m == "vmul") {
            need(3);
            const int vd = parse_reg(ops[0], 'v', 8, tl.line_no);
            const int va = parse_reg(ops[1], 'v', 8, tl.line_no);
            const int vb = parse_reg(ops[2], 'v', 8, tl.line_no);
            prog.push_back(m == "vadd" ? make_vadd(vd, va, vb)
                                       : make_vmul(vd, va, vb));
        } else if (m == "vmac") {
            need(3);
            prog.push_back(make_vmac(parse_reg(ops[0], 'a', 4, tl.line_no),
                                     parse_reg(ops[1], 'v', 8, tl.line_no),
                                     parse_reg(ops[2], 'v', 8, tl.line_no)));
        } else if (m == "vclr") {
            need(1);
            prog.push_back(
                make_vclr(parse_reg(ops[0], 'a', 4, tl.line_no)));
        } else if (m == "vsat") {
            need(3);
            prog.push_back(make_vsat(parse_reg(ops[0], 'v', 8, tl.line_no),
                                     parse_reg(ops[1], 'a', 4, tl.line_no),
                                     parse_imm(ops[2], tl.line_no)));
        } else if (m == "setmode") {
            need(1);
            const std::int32_t v = parse_imm(ops[0], tl.line_no);
            if (v < 0 || v > 2) {
                fail(tl.line_no, "setmode operand must be 0, 1 or 2");
            }
            prog.push_back(make_setmode(static_cast<sw_mode>(v)));
        } else {
            fail(tl.line_no, "unknown mnemonic '" + m + "'");
        }
    }
    return prog;
}

std::string disassemble(const program& prog)
{
    std::string out;
    for (const instruction& i : prog) {
        out += i.to_string();
        out += '\n';
    }
    return out;
}

} // namespace dvafs
