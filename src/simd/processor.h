// Cycle-level simulator of the DVAFS-compatible SIMD RISC vector processor
// (paper Sec. III-B). Functional behaviour is bit-exact subword arithmetic;
// energy is accounted per executed instruction into the three power domains
// (memory / nas / as), which is exactly the decomposition behind the
// paper's Table II and Fig. 4.

#pragma once

#include "energy/energy_ledger.h"
#include "energy/power_model.h"
#include "simd/isa.h"
#include "simd/memory.h"
#include "simd/power_domains.h"

#include <array>
#include <cstdint>
#include <map>
#include <vector>

namespace dvafs {

// Per-component energies at nominal voltage, calibrated so that the SW = 8
// full-precision convolution workload reproduces the paper's Table II
// breakdown (31% mem / 46% nas / 23% as at 36 mW). See DESIGN.md §5.
struct simd_energy_model {
    // nas domain --------------------------------------------------------
    double e_fetch_decode_pj = 11.4; // fixed per cycle
    double e_ctrl_pj_per_lane = 1.9; // per-lane control, per cycle
    double e_scalar_pj = 2.0;        // scalar ALU/branch execution
    double e_vrf_pj_per_lane = 1.0;  // vector register file, per vector op
    // as domain ---------------------------------------------------------
    double e_mac_pj_per_lane = 5.2;  // full-precision MAC (mult + accum)
    double e_net_pj_per_lane = 1.0;  // operand network, x log2(SW/8)
    // Activity divisors per (mode, das_bits): defaults from paper Table I;
    // callers may install divisors measured on the gate-level multiplier.
    double activity_divisor(sw_mode mode, int das_bits) const;
    std::map<std::pair<sw_mode, int>, double> activity_override;
    // memory ------------------------------------------------------------
    memory_energy_params mem;
};

struct simd_stats {
    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0;
    std::uint64_t vector_macs = 0;   // vmac instructions executed
    std::uint64_t words_processed = 0; // MAC word-ops (lanes x subwords)
    std::map<opcode, std::uint64_t> mix;
    energy_ledger ledger;

    double power_mw(double f_mhz) const
    {
        return ledger.power_mw(cycles, f_mhz);
    }
    double energy_per_word_pj() const
    {
        return words_processed
                   ? ledger.total_pj()
                         / static_cast<double>(words_processed)
                   : 0.0;
    }
};

class simd_processor {
public:
    // `sw`: SIMD width (lanes); memory_words: data memory size.
    simd_processor(int sw, std::size_t memory_words,
                   simd_energy_model energy = {});

    int sw() const noexcept { return sw_; }
    banked_memory& memory() noexcept { return mem_; }
    const banked_memory& memory() const noexcept { return mem_; }

    // Operating point: voltages and mode (affects energy, not function
    // except for the subword mode).
    void set_operating_point(const domain_voltages& dv);
    const domain_voltages& operating_point() const noexcept { return dv_; }

    void load_program(program p);

    // Runs until halt (or max_cycles); returns accumulated stats.
    // Throws std::runtime_error on invalid PC or cycle overrun.
    const simd_stats& run(std::uint64_t max_cycles = 10'000'000);

    const simd_stats& stats() const noexcept { return stats_; }
    void reset_stats();

    // Architectural state access for tests.
    std::int32_t reg(int idx) const { return regs_.at(idx); }
    void set_reg(int idx, std::int32_t v) { regs_.at(idx) = v; }
    const std::vector<std::uint16_t>& vreg(int idx) const
    {
        return vregs_.at(idx);
    }

private:
    void execute(const instruction& ins);
    void account(const instruction& ins);
    int active_bits() const noexcept;

    int sw_;
    banked_memory mem_;
    simd_energy_model energy_;
    domain_voltages dv_;

    program prog_;
    std::int64_t pc_ = 0;
    bool halted_ = false;
    std::array<std::int32_t, 8> regs_{};
    std::vector<std::vector<std::uint16_t>> vregs_; // 8 x sw lanes
    std::vector<std::vector<std::uint32_t>> accs_;  // 4 x sw lanes (packed)
    simd_stats stats_;
};

} // namespace dvafs
